#include "obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace xlp::obs {

namespace {

/// One node of a thread's private call tree. Children keep first-seen
/// order; the merge sorts by name so reports never depend on it.
struct Node {
  std::string name;
  Node* parent = nullptr;
  long hits = 0;
  double inclusive_seconds = 0.0;
  std::vector<std::unique_ptr<Node>> children;

  Node* child(const char* child_name) {
    for (const auto& c : children)
      if (c->name == child_name) return c.get();
    auto owned = std::make_unique<Node>();
    owned->name = child_name;
    owned->parent = this;
    children.push_back(std::move(owned));
    return children.back().get();
  }
};

/// Per-thread tree plus the cursor into it. Registered in a global list on
/// first use so trees outlive their threads (the shared_ptr keeps the tree
/// alive after thread exit until the next Profiler::reset()).
struct ThreadTree {
  Node root;          // unnamed sentinel; depth-0 scopes are its children
  Node* current = &root;
};

struct Global {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTree>> trees;
};

Global& global() {
  static Global g;
  return g;
}

ThreadTree& thread_tree() {
  thread_local std::shared_ptr<ThreadTree> tls = [] {
    auto tree = std::make_shared<ThreadTree>();
    auto& g = global();
    const std::lock_guard<std::mutex> lock(g.mutex);
    g.trees.push_back(tree);
    return tree;
  }();
  return *tls;
}

/// Name-keyed merge target, built from every thread tree.
struct MergedNode {
  std::string name;
  long hits = 0;
  double inclusive_seconds = 0.0;
  std::vector<std::unique_ptr<MergedNode>> children;

  MergedNode* child(const std::string& child_name) {
    for (const auto& c : children)
      if (c->name == child_name) return c.get();
    auto owned = std::make_unique<MergedNode>();
    owned->name = child_name;
    children.push_back(std::move(owned));
    return children.back().get();
  }
};

void merge_into(MergedNode& dst, const Node& src) {
  dst.hits += src.hits;
  dst.inclusive_seconds += src.inclusive_seconds;
  for (const auto& c : src.children) merge_into(*dst.child(c->name), *c);
}

void flatten(const MergedNode& node, const std::string& parent_path,
             int depth, std::vector<ProfileEntry>& out) {
  std::vector<const MergedNode*> ordered;
  ordered.reserve(node.children.size());
  for (const auto& c : node.children) ordered.push_back(c.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const MergedNode* a, const MergedNode* b) {
              return a->name < b->name;
            });
  for (const MergedNode* c : ordered) {
    ProfileEntry entry;
    entry.path = parent_path.empty() ? c->name : parent_path + ";" + c->name;
    entry.name = c->name;
    entry.depth = depth;
    entry.hits = c->hits;
    entry.inclusive_seconds = c->inclusive_seconds;
    double child_sum = 0.0;
    for (const auto& gc : c->children) child_sum += gc->inclusive_seconds;
    entry.exclusive_seconds =
        std::max(0.0, c->inclusive_seconds - child_sum);
    out.push_back(entry);
    // Recurse with the local copy, not out.back().path — the recursion
    // appends to `out` and a reallocation would invalidate that reference.
    flatten(*c, entry.path, depth + 1, out);
  }
}

}  // namespace

std::atomic<bool> Profiler::enabled_{false};

void Profiler::enable() noexcept {
  enabled_.store(true, std::memory_order_relaxed);
}

void Profiler::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
}

ProfileReport Profiler::snapshot() {
  MergedNode merged;
  {
    auto& g = global();
    const std::lock_guard<std::mutex> lock(g.mutex);
    for (const auto& tree : g.trees) merge_into(merged, tree->root);
  }
  std::vector<ProfileEntry> entries;
  flatten(merged, "", 0, entries);
  return ProfileReport(std::move(entries));
}

void Profiler::reset() {
  auto& g = global();
  const std::lock_guard<std::mutex> lock(g.mutex);
  for (const auto& tree : g.trees) {
    // A live thread keeps its shared_ptr and cursor; wipe the recorded
    // data but keep the root so its cursor (parked at the root between
    // scopes) stays valid.
    tree->root.children.clear();
    tree->root.hits = 0;
    tree->root.inclusive_seconds = 0.0;
    tree->current = &tree->root;
  }
}

ProfileScope::ProfileScope(const char* name) noexcept : active_(false) {
  if (!Profiler::enabled()) return;
  ThreadTree& tree = thread_tree();
  Node* node = tree.current->child(name);
  ++node->hits;
  tree.current = node;
  active_ = true;
  start_ = std::chrono::steady_clock::now();
}

ProfileScope::~ProfileScope() {
  if (!active_) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  ThreadTree& tree = thread_tree();
  tree.current->inclusive_seconds += elapsed;
  if (tree.current->parent != nullptr) tree.current = tree.current->parent;
}

double ProfileReport::root_inclusive_seconds() const noexcept {
  double total = 0.0;
  for (const ProfileEntry& e : entries_)
    if (e.depth == 0) total += e.inclusive_seconds;
  return total;
}

Json ProfileReport::to_json() const {
  Json scopes = Json::array();
  for (const ProfileEntry& e : entries_)
    scopes.push(Json::object()
                    .set("path", e.path)
                    .set("name", e.name)
                    .set("depth", e.depth)
                    .set("hits", e.hits)
                    .set("inclusive_us", e.inclusive_seconds * 1e6)
                    .set("exclusive_us", e.exclusive_seconds * 1e6));
  return scopes;
}

std::string ProfileReport::to_collapsed() const {
  std::string out;
  for (const ProfileEntry& e : entries_) {
    const long usec = std::lround(e.exclusive_seconds * 1e6);
    if (usec <= 0) continue;
    out += e.path;
    out += ' ';
    out += std::to_string(usec);
    out += '\n';
  }
  return out;
}

void ProfileReport::export_to(MetricsRegistry& registry) const {
  for (const ProfileEntry& e : entries_) {
    std::string name = "profile." + e.path;
    std::replace(name.begin(), name.end(), ';', '.');
    registry.record_samples(name, e.exclusive_seconds, e.hits);
  }
}

}  // namespace xlp::obs
