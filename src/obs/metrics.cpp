#include "obs/metrics.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace xlp::obs {

bool ensure_parent_dir(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return true;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);  // ok when already there
  return !ec;
}

void MetricsRegistry::add(const std::string& name, long delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::record_time(const std::string& name, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TimerStat& stat = timers_[name];
  stat.seconds += seconds;
  ++stat.count;
}

void MetricsRegistry::record_samples(const std::string& name, double seconds,
                                     long count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TimerStat& stat = timers_[name];
  stat.seconds += seconds;
  stat.count += count;
}

long MetricsRegistry::counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

TimerStat MetricsRegistry::timer(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

Json MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  Json gauges = Json::object();
  for (const auto& [name, value] : gauges_) gauges.set(name, value);
  Json timers = Json::object();
  for (const auto& [name, stat] : timers_)
    timers.set(name, Json::object()
                         .set("seconds", stat.seconds)
                         .set("count", stat.count));
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("timers", std::move(timers));
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  if (!ensure_parent_dir(path)) return false;
  std::ofstream out(path);
  if (!out.good()) return false;
  out << to_json().dump() << '\n';
  return out.good();
}

MetricsRegistry& MetricsRegistry::global() noexcept {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace xlp::obs
