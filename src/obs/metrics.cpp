#include "obs/metrics.hpp"

#include "util/fsio.hpp"

namespace xlp::obs {

bool ensure_parent_dir(const std::string& path) {
  return util::ensure_parent_dir(path);
}

void MetricsRegistry::add(const std::string& name, long delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::record_time(const std::string& name, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TimerStat& stat = timers_[name];
  stat.seconds += seconds;
  ++stat.count;
}

void MetricsRegistry::record_samples(const std::string& name, double seconds,
                                     long count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TimerStat& stat = timers_[name];
  stat.seconds += seconds;
  stat.count += count;
}

long MetricsRegistry::counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

TimerStat MetricsRegistry::timer(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

Json MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, value] : counters_) counters.set(name, value);
  Json gauges = Json::object();
  for (const auto& [name, value] : gauges_) gauges.set(name, value);
  Json timers = Json::object();
  for (const auto& [name, stat] : timers_)
    timers.set(name, Json::object()
                         .set("seconds", stat.seconds)
                         .set("count", stat.count));
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("timers", std::move(timers));
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  return util::atomic_write_file(path, to_json().dump() + "\n");
}

MetricsRegistry& MetricsRegistry::global() noexcept {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace xlp::obs
