#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace xlp::obs {

/// Schema identifier of serialized histograms.
inline constexpr const char* kHistSchema = "xlp-hist/1";

/// Log-bucketed (HDR-style) histogram of non-negative integer values —
/// latencies in nanoseconds or cycles. Values below 2^sub_bucket_bits are
/// recorded exactly (one unit-wide bucket per value); above, the bucket
/// width doubles every octave, so the relative quantization error is
/// bounded by 2^-(sub_bucket_bits-1) while memory stays
/// O(sub_bucket_count * log(max_value)). Buckets are grown lazily, so a
/// histogram only pays for the value range it actually sees.
///
/// Determinism: a histogram is a pure bag of counters — merge() is counter
/// addition, so merging per-thread histograms yields the same bytes for
/// any thread count and any merge order. value_at_quantile() uses the
/// nearest-rank rule sorted[floor(q * (count - 1))], matching the
/// simulator's historical sort-based percentiles exactly whenever every
/// recorded value is in the exact (sub-bucket) range.
class Histogram {
 public:
  /// `sub_bucket_bits` in [1, 30]: values < 2^bits are exact.
  explicit Histogram(int sub_bucket_bits = 7);

  /// Records `count` occurrences of `value` (negative values clamp to 0).
  void record(long value, long count = 1);

  /// Adds every counter of `other` into this histogram. When the bucket
  /// layouts differ, `other`'s buckets are re-recorded at their lowest
  /// equivalent value (still deterministic, possibly coarser).
  void merge(const Histogram& other);

  [[nodiscard]] int sub_bucket_bits() const noexcept { return bits_; }
  [[nodiscard]] long count() const noexcept { return count_; }
  [[nodiscard]] long sum() const noexcept { return sum_; }
  /// Exact extrema of the recorded values (0 when empty) — tracked
  /// alongside the buckets, so they never suffer quantization.
  [[nodiscard]] long min() const noexcept { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] long max() const noexcept { return count_ > 0 ? max_ : 0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  /// Nearest-rank quantile: the lowest equivalent value of the bucket
  /// holding rank floor(q * (count - 1)), clamped into [min, max]. Exact
  /// when every value is below 2^sub_bucket_bits; 0 when empty.
  [[nodiscard]] long value_at_quantile(double q) const;

  /// {"schema":"xlp-hist/1","sub_bucket_bits":k,"count":n,"min":...,
  ///  "max":...,"sum":...,"mean":...,"p50":...,"p90":...,"p99":...,
  ///  "buckets":[[lowest_value,count],...]} — non-empty buckets only.
  /// Deterministic mode zeroes every value-derived field and empties the
  /// buckets, keeping only the structural fields and the sample count
  /// (the bench-harness precedent for time-derived data).
  [[nodiscard]] Json to_json(bool deterministic = false) const;

 private:
  [[nodiscard]] std::size_t index_of(long value) const noexcept;
  [[nodiscard]] long lowest_equivalent(std::size_t index) const noexcept;

  int bits_;
  long sub_bucket_count_;
  long half_;
  long count_ = 0;
  long sum_ = 0;
  long min_ = 0;
  long max_ = 0;
  std::vector<long> counts_;
};

/// Low-overhead concurrent recording front for Histogram: a fixed set of
/// lock-striped shards, each thread recording into the shard picked by a
/// thread-local hash of its id — so unrelated threads almost never
/// contend, and the hot path is one uncontended mutex plus two array
/// increments. snapshot() merges every shard; merge order is fixed and
/// merging is commutative counter addition, so the snapshot is
/// deterministic for any thread count.
class ShardedHistogram {
 public:
  explicit ShardedHistogram(int sub_bucket_bits = 7, std::size_t shards = 16);

  void record(long value);
  /// Total samples recorded across every shard.
  [[nodiscard]] long count() const;
  /// Deterministic merge of every shard.
  [[nodiscard]] Histogram snapshot() const;

 private:
  struct Shard {
    explicit Shard(int bits) : hist(bits) {}
    mutable std::mutex mutex;
    Histogram hist;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace xlp::obs
