#include "obs/timeseries.hpp"

#include "util/fsio.hpp"

namespace xlp::obs {

SeriesRecorder::SeriesRecorder(std::size_t capacity)
    : capacity_(capacity < 4 ? 4 : capacity & ~std::size_t{1}) {}

void SeriesRecorder::append(const std::string& series, double x, double y) {
  Series& s = series_[series];
  if (s.pending_count == 0) s.pending_x = x;
  s.pending_sum += y;
  ++s.pending_count;
  ++s.total_samples;
  if (s.pending_count >= s.stride) flush_pending(s);
}

void SeriesRecorder::flush_pending(Series& s) {
  if (s.pending_count == 0) return;
  if (s.points.size() >= capacity_) compact(s);
  s.points.push_back({s.pending_x, s.pending_sum / s.pending_count,
                      s.pending_count});
  s.pending_sum = 0.0;
  s.pending_count = 0;
}

void SeriesRecorder::compact(Series& s) {
  // Merge adjacent pairs: count-weighted mean keeps the series mean exact,
  // the earlier x keeps windows left-aligned. Doubling the stride halves
  // the sampling resolution for everything recorded from here on.
  std::vector<Point> merged;
  merged.reserve(s.points.size() / 2 + 1);
  for (std::size_t i = 0; i + 1 < s.points.size(); i += 2) {
    const Point& a = s.points[i];
    const Point& b = s.points[i + 1];
    const long count = a.count + b.count;
    merged.push_back({a.x, (a.y * a.count + b.y * b.count) / count, count});
  }
  if (s.points.size() % 2 != 0) merged.push_back(s.points.back());
  s.points = std::move(merged);
  s.stride *= 2;
}

std::vector<std::string> SeriesRecorder::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

const SeriesRecorder::Series* SeriesRecorder::find(
    const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<SeriesRecorder::Point> SeriesRecorder::sampled(
    const std::string& name) const {
  const Series* s = find(name);
  if (s == nullptr) return {};
  std::vector<Point> out = s->points;
  if (s->pending_count > 0) {
    const Point pending{s->pending_x, s->pending_sum / s->pending_count,
                        s->pending_count};
    if (out.size() >= capacity_) {
      // A full buffer plus the partial bucket would exceed capacity; fold
      // the bucket into the last point (weighted mean) so the <= capacity
      // bound holds while no sample is dropped.
      Point& last = out.back();
      const long count = last.count + pending.count;
      last.y = (last.y * last.count + pending.y * pending.count) / count;
      last.count = count;
    } else {
      out.push_back(pending);
    }
  }
  return out;
}

void SeriesRecorder::adopt(const SeriesRecorder& other) {
  for (const auto& [name, s] : other.series_) series_[name] = s;
}

Json SeriesRecorder::to_json() const {
  Json all = Json::object();
  for (const auto& [name, series] : series_) {
    Json points = Json::array();
    for (const Point& p : sampled(name))
      points.push(Json::array().push(p.x).push(p.y).push(p.count));
    all.set(name, Json::object()
                      .set("stride", series.stride)
                      .set("total_samples", series.total_samples)
                      .set("points", std::move(points)));
  }
  return Json::object()
      .set("schema", "xlp-series/1")
      .set("capacity", static_cast<long>(capacity_))
      .set("series", std::move(all));
}

bool SeriesRecorder::write_json_file(const std::string& path) const {
  return util::atomic_write_file(path, to_json().dump() + "\n");
}

}  // namespace xlp::obs
