#pragma once

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace xlp::obs {

class MetricsRegistry;

/// One scope of the merged profile, flattened in deterministic preorder
/// (children sorted by name). `path` joins the ancestor chain with ';' so
/// it doubles as a collapsed-stack frame.
struct ProfileEntry {
  std::string path;   // "sa.anneal;sa.evaluate"
  std::string name;   // "sa.evaluate"
  int depth = 0;      // 0 for root scopes
  long hits = 0;
  double inclusive_seconds = 0.0;
  double exclusive_seconds = 0.0;
};

/// Immutable merged snapshot of every thread's scope tree. Produced by
/// Profiler::snapshot(); all exports are deterministic given the same
/// recorded hits (ordering never depends on thread interleaving).
class ProfileReport {
 public:
  explicit ProfileReport(std::vector<ProfileEntry> entries)
      : entries_(std::move(entries)) {}

  [[nodiscard]] const std::vector<ProfileEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Sum of inclusive time over the depth-0 scopes — the wall time the
  /// profile accounts for.
  [[nodiscard]] double root_inclusive_seconds() const noexcept;

  /// Ordered JSON: [{"path","name","depth","hits","inclusive_us",
  /// "exclusive_us"}, ...] in preorder.
  [[nodiscard]] Json to_json() const;

  /// Collapsed-stack text consumable by flamegraph.pl: one
  /// "a;b;c <exclusive microseconds>" line per scope with nonzero
  /// exclusive time (flamegraph.pl wants integer sample counts; 1 sample
  /// == 1 usec).
  [[nodiscard]] std::string to_collapsed() const;

  /// Folds every scope into `registry` as a timer named
  /// "profile.<path with ';' replaced by '.'>" carrying the exclusive
  /// time and hit count.
  void export_to(MetricsRegistry& registry) const;

 private:
  std::vector<ProfileEntry> entries_;
};

/// Process-wide hierarchical wall-time profiler. Disabled by default:
/// every ProfileScope then costs a single relaxed atomic load. When
/// enabled, each thread grows a private call tree (no locking on the hot
/// path); snapshot() merges the trees by scope name into a deterministic
/// report. Merge after worker threads have joined — snapshotting while a
/// profiled thread is mid-scope reads a tree that is still moving.
class Profiler {
 public:
  static void enable() noexcept;
  static void disable() noexcept;
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Merged view of every tree recorded since the last reset().
  [[nodiscard]] static ProfileReport snapshot();

  /// Drops all recorded trees (for tests and back-to-back bench runs).
  /// Callers must ensure no ProfileScope is live on any thread.
  static void reset();

 private:
  friend class ProfileScope;
  static std::atomic<bool> enabled_;
};

/// RAII scope: constructor pushes a named node onto the calling thread's
/// tree, destructor pops it and accrues the elapsed wall time. Scope names
/// should be stable literals ("sim.inject"); recursion simply deepens the
/// tree. Free when the profiler is disabled.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) noexcept;
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope();

 private:
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xlp::obs
