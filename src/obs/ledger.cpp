#include "obs/ledger.hpp"

#include <sstream>

#include "obs/canonical.hpp"
#include "util/fsio.hpp"

namespace xlp::obs {

std::string ledger_run_id(const std::string& subcommand, const Json& params,
                          std::uint64_t seed, const std::string& git_sha) {
  return fnv1a64_hex(subcommand + "\n" + canonical_json(params) + "\n" +
                     std::to_string(seed) + "\n" + git_sha);
}

std::string LedgerEntry::run_id() const {
  return ledger_run_id(subcommand, params, seed, git_sha);
}

Json LedgerEntry::to_json() const {
  Json artifact_list = Json::array();
  for (const std::string& a : artifacts) artifact_list.push(a);
  Json record = Json::object()
      .set("schema", "xlp-ledger/1")
      .set("run_id", run_id())
      .set("subcommand", subcommand)
      .set("params", params)
      .set("seed", static_cast<long>(seed))
      .set("git_sha", git_sha)
      .set("hostname", hostname)
      .set("wall_seconds", wall_seconds)
      .set("exit_status", exit_status);
  if (cache_hit >= 0) record.set("cache_hit", cache_hit != 0);
  return record.set("artifacts", std::move(artifact_list));
}

bool append_ledger_entry(const std::string& path, const LedgerEntry& entry) {
  std::string content;
  if (const auto existing = util::read_file(path)) content = *existing;
  content += entry.to_json().dump() + "\n";
  return util::atomic_write_file(path, content);
}

std::vector<Json> read_ledger(const std::string& path) {
  std::vector<Json> records;
  const auto content = util::read_file(path);
  if (!content) return records;
  std::istringstream in(*content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto record = Json::parse(line); record && record->is_object())
      records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace xlp::obs
