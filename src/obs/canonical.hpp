#pragma once

#include <string>

#include "obs/json.hpp"

namespace xlp::obs {

/// Returns a copy of `value` with every object's members sorted by key
/// (bytewise, recursively; array order is preserved). Two documents that
/// differ only in member insertion order canonicalize identically.
[[nodiscard]] Json canonical_sorted(const Json& value);

/// Canonical serialization: canonical_sorted(value).dump(). This is the
/// byte string content hashes are taken over — ledger run ids and svc
/// request ids both use it, so a request built field-by-field by the CLI
/// and one parsed from a client's JSON (any member order) hash the same.
/// Number formatting is dump()'s: integral values print without a
/// fraction, doubles with just enough digits to round-trip — stable
/// across platforms, processes and thread counts.
[[nodiscard]] std::string canonical_json(const Json& value);

/// FNV-1a 64-bit over `bytes`, as 16 lowercase hex characters. The shared
/// content-hash primitive behind ledger run ids and svc request/cache ids.
[[nodiscard]] std::string fnv1a64_hex(const std::string& bytes);

}  // namespace xlp::obs
