#pragma once

#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "obs/json.hpp"
#include "util/stopwatch.hpp"

namespace xlp::obs {

/// Creates any missing parent directories of `path` so a subsequent open
/// for writing can succeed (no-op when the path has no directory
/// component). Returns false, without throwing, when creation failed —
/// shared by every best-effort telemetry writer.
bool ensure_parent_dir(const std::string& path);

/// Accumulated wall-time statistic for one named timer.
struct TimerStat {
  double seconds = 0.0;
  long count = 0;
  [[nodiscard]] double mean_seconds() const noexcept {
    return count > 0 ? seconds / count : 0.0;
  }
};

/// Named counters, gauges and timers. All mutators are thread-safe (one
/// internal mutex), so parallel SA chains and future sharded workers can
/// share a registry. Instrumented library code records into global() by
/// default; tests and embedders can construct private registries and
/// inject them instead.
class MetricsRegistry {
 public:
  /// Adds `delta` to the named monotonic counter (created at 0 on first
  /// touch).
  void add(const std::string& name, long delta = 1);
  /// Sets the named gauge to the latest value.
  void set_gauge(const std::string& name, double value);
  /// Accumulates one wall-time sample into the named timer.
  void record_time(const std::string& name, double seconds);
  /// Accumulates a pre-aggregated batch: `seconds` of total wall time
  /// spread over `count` samples (used when folding profiler scopes in).
  void record_samples(const std::string& name, double seconds, long count);

  [[nodiscard]] long counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] TimerStat timer(const std::string& name) const;

  /// Drops every metric (mainly for tests on the global registry).
  void clear();

  /// Serializes the whole registry:
  ///   {"counters": {...}, "gauges": {...},
  ///    "timers": {name: {"seconds": s, "count": n}, ...}}
  [[nodiscard]] Json to_json() const;

  /// Writes to_json() to a file; returns false (without throwing) when the
  /// file cannot be opened — telemetry output is best-effort.
  [[nodiscard]] bool write_json_file(const std::string& path) const;

  /// The process-wide registry used by default instrumentation.
  [[nodiscard]] static MetricsRegistry& global() noexcept;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, long> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, TimerStat> timers_;
};

/// RAII wall-clock timer: records the elapsed time into `registry` under
/// `name` when the scope exits.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { registry_.record_time(name_, watch_.seconds()); }

 private:
  MetricsRegistry& registry_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace xlp::obs
