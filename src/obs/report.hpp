#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace xlp::obs {

/// One plotted line: a name (becomes the legend label) and (x, y) points.
struct ChartSeries {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Everything `xlp report` understands inside a run directory. Files are
/// classified by content, not filename, so the CLI's free-form --trace /
/// --stats-json / --series paths all work as long as they land in the
/// directory being reported.
struct RunDirData {
  std::string dir;
  std::optional<Json> series;   // xlp-series/1 document (SeriesRecorder)
  std::optional<Json> stats;    // SimStats serialization
  std::optional<Json> metrics;  // MetricsRegistry serialization
  std::optional<Json> profile;  // ProfileReport::to_json() array
  /// Final `xlpd` stats snapshot ("kind":"stats" + latency histograms).
  std::optional<Json> server_stats;
  /// svc-events/1 request lifecycle records, file order.
  std::vector<Json> server_events;
  std::vector<Json> ledger;     // ledger.jsonl records, file order
  /// Last `sim.channel_utilization` event found in any JSONL trace.
  std::optional<Json> heatmap;
  /// Series derived from JSONL trace events (`sim.progress`, `sa.cool`),
  /// keyed by a descriptive name, in key order.
  std::map<std::string, std::vector<std::pair<double, double>>> trace_series;
};

/// Scans `dir` (non-recursive, entries in name order): parses every *.json
/// and *.jsonl file and buckets what it recognizes. Unreadable or
/// unrecognized files are skipped — reporting is best-effort.
[[nodiscard]] RunDirData collect_run_dir(const std::string& dir);

/// Chart inputs from an xlp-series/1 document, one ChartSeries per
/// recorded series in name order.
[[nodiscard]] std::vector<ChartSeries> chart_series_from_json(
    const Json& series_doc);

/// Dependency-free inline SVG line chart: axes with min/max tick labels, a
/// fixed color palette, and a legend. Safe to embed directly in HTML.
[[nodiscard]] std::string svg_line_chart(const std::string& title,
                                         const std::vector<ChartSeries>& series,
                                         int width = 660, int height = 240);

/// Bar chart of an xlp-hist/1 latency histogram (docs/observability.md):
/// one bar per populated bucket, nanosecond tick labels, and the
/// p50/p90/p99 quantiles in the title line. "No samples" placeholder when
/// the histogram is empty.
[[nodiscard]] std::string svg_latency_histogram(const std::string& title,
                                                const Json& hist);

/// Channel-utilization heatmap from a `sim.channel_utilization` event:
/// routers on their mesh grid, each directed channel a line colored by
/// utilization (blue 0 -> red 1). Uses the event's width/height when
/// present, else assumes a square mesh.
[[nodiscard]] std::string svg_channel_heatmap(const Json& heatmap_event);

/// Wraps body markup in the self-contained report page (inline CSS, no
/// scripts, no external references).
[[nodiscard]] std::string html_page(const std::string& title,
                                    const std::string& body);

/// Renders the full single-file HTML dashboard for one run directory: line
/// charts for every recorded and trace-derived series, the channel heatmap,
/// the stats summary, the profiler tree table and the run ledger.
[[nodiscard]] std::string render_report_html(const RunDirData& data);

/// Escapes &<>" for embedding untrusted strings in HTML/SVG text.
[[nodiscard]] std::string html_escape(const std::string& raw);

}  // namespace xlp::obs
