#include "obs/trace.hpp"

#include <ostream>

namespace xlp::obs {

TraceSink& null_trace_sink() noexcept {
  static NullTraceSink sink;
  return sink;
}

void JsonlTraceSink::emit(const std::string& event, Json fields) {
  Json record = Json::object();
  // ts is read under the lock so it is monotone in file order even when
  // several threads emit concurrently.
  const std::lock_guard<std::mutex> lock(mutex_);
  record.set("ts", clock_.seconds());
  record.set("event", event);
  for (auto& [key, value] : fields.members()) record.set(key, value);
  os_ << record.dump() << '\n';
  ++events_;
}

long JsonlTraceSink::events_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

}  // namespace xlp::obs
