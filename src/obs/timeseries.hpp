#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace xlp::obs {

/// Bounded-memory recorder for named time series. Each series holds at
/// most `capacity` stored points regardless of how many samples are
/// appended: when a series fills up, adjacent point pairs are merged
/// (count-weighted mean of y, x of the earlier point) and the sampling
/// stride doubles, so every subsequent stored point summarizes twice as
/// many raw samples. The result is a uniform-resolution downsample whose
/// memory is O(capacity) for arbitrarily long runs — 10^7 appends still
/// hold <= capacity points — while per-series means stay exact.
///
/// Recording is wired behind a single pointer check at every
/// instrumentation site (simulator cycle loop, SA cooling steps), so the
/// disabled path costs one branch. append() itself is O(1) amortized.
///
/// Not thread-safe: concurrent recorders (portfolio chains) each own a
/// private instance and the owner merges them with adopt() after joining,
/// which keeps the merged document deterministic for any thread count.
class SeriesRecorder {
 public:
  /// One stored point: the first x of the merged window, the mean y over
  /// it, and how many raw samples it summarizes.
  struct Point {
    double x = 0.0;
    double y = 0.0;
    long count = 0;
  };

  /// Per-series state; exposed so adopt() and the report renderer can
  /// walk it without copying.
  struct Series {
    std::vector<Point> points;
    long stride = 1;          // raw samples per stored point
    long total_samples = 0;   // raw samples ever appended
    // Partial bucket still accumulating toward `stride` samples.
    double pending_x = 0.0;
    double pending_sum = 0.0;
    long pending_count = 0;
  };

  /// Capacity is clamped to >= 4 and rounded down to an even number so
  /// pair-merging always lands exactly on capacity/2 points.
  explicit SeriesRecorder(std::size_t capacity = 512);

  /// Appends one raw sample to the named series (created on first touch).
  void append(const std::string& series, double x, double y);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Names of every recorded series, in lexicographic order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Series by name; nullptr when never recorded.
  [[nodiscard]] const Series* find(const std::string& name) const;
  [[nodiscard]] bool empty() const noexcept { return series_.empty(); }

  /// Stored points of one series including the partial pending bucket
  /// (flushed as a final point so short runs lose nothing).
  [[nodiscard]] std::vector<Point> sampled(const std::string& name) const;

  /// Copies every series of `other` into this recorder. Series names must
  /// be disjoint (portfolio chains prefix theirs with "chainK."); a
  /// duplicate name is replaced, deterministically favoring `other`.
  void adopt(const SeriesRecorder& other);

  /// {"schema":"xlp-series/1","capacity":N,"series":{name:{"stride":s,
  ///  "total_samples":t,"points":[[x,y,count],...]},...}} with series in
  /// name order, so equal recordings dump byte-identically.
  [[nodiscard]] Json to_json() const;

  /// Atomically writes to_json() to `path`; false (no throw) on failure.
  [[nodiscard]] bool write_json_file(const std::string& path) const;

 private:
  void flush_pending(Series& s);
  static void compact(Series& s);

  std::size_t capacity_;
  std::map<std::string, Series> series_;
};

}  // namespace xlp::obs
