#include "obs/provenance.hpp"

#include <cstdio>
#include <cstdlib>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace xlp::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string build_flags() {
#ifdef XLP_BUILD_FLAGS
  return XLP_BUILD_FLAGS;
#else
  return "";
#endif
}

std::string host_name() {
#ifndef _WIN32
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0')
    return std::string(buf);
#endif
  return "unknown";
}

std::string git_head() {
  if (const char* pinned = std::getenv("XLP_GIT_SHA");
      pinned != nullptr && pinned[0] != '\0')
    return pinned;
#ifndef _WIN32
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, pipe);
    ::pclose(pipe);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
      sha.pop_back();
    if (sha.size() == 40) return sha;
  }
#endif
  return "unknown";
}

}  // namespace

Provenance Provenance::collect(std::uint64_t seed) {
  Provenance p;
  p.git_sha = git_head();
  p.compiler = compiler_id();
  p.flags = build_flags();
  p.hostname = host_name();
  p.seed = seed;
  return p;
}

Json Provenance::to_json() const {
  return Json::object()
      .set("git_sha", git_sha)
      .set("compiler", compiler)
      .set("flags", flags)
      .set("hostname", hostname)
      .set("seed", static_cast<long>(seed));
}

}  // namespace xlp::obs
