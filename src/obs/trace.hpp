#pragma once

#include <iosfwd>
#include <mutex>
#include <string>

#include "obs/json.hpp"
#include "util/stopwatch.hpp"

namespace xlp::obs {

/// Destination for structured trace events. Instrumented code calls
/// `sink.emit("sa.cool", fields)` where `fields` is a JSON object payload;
/// what happens next depends on the sink. Call sites that would pay to
/// build the payload should guard on `enabled()` so the default null sink
/// makes instrumentation cost ~nothing.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const std::string& event, Json fields) = 0;
  [[nodiscard]] virtual bool enabled() const noexcept { return true; }
};

/// Swallows every event; `enabled()` is false so call sites skip building
/// payloads entirely.
class NullTraceSink final : public TraceSink {
 public:
  void emit(const std::string&, Json) override {}
  [[nodiscard]] bool enabled() const noexcept override { return false; }
};

/// The process-wide null sink, usable as a default for optional sink
/// parameters.
[[nodiscard]] TraceSink& null_trace_sink() noexcept;

/// Writes one JSON object per event to an ostream (JSONL). Each record is
/// `{"ts": <seconds since sink construction>, "event": <name>, ...payload
/// members...}` followed by a newline. Thread-safe: concurrent emitters
/// serialize on an internal mutex so lines never interleave, and `ts` is
/// monotonic across the file.
class JsonlTraceSink final : public TraceSink {
 public:
  /// The stream must outlive the sink; the sink never owns it.
  explicit JsonlTraceSink(std::ostream& os) : os_(os) {}

  void emit(const std::string& event, Json fields) override;

  [[nodiscard]] long events_written() const;

 private:
  std::ostream& os_;
  Stopwatch clock_;
  mutable std::mutex mutex_;
  long events_ = 0;
};

}  // namespace xlp::obs
