#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <thread>

namespace xlp::obs {

Histogram::Histogram(int sub_bucket_bits)
    : bits_(std::clamp(sub_bucket_bits, 1, 30)),
      sub_bucket_count_(1L << bits_),
      half_(sub_bucket_count_ / 2) {}

std::size_t Histogram::index_of(long value) const noexcept {
  if (value < 0) value = 0;
  if (value < sub_bucket_count_) return static_cast<std::size_t>(value);
  // value in [2^m, 2^(m+1)) with m >= bits_: shift m+1-bits_ maps it into
  // [half, sub_bucket_count), and each octave owns `half_` indices, so the
  // index space is contiguous with the exact range below.
  const int shift =
      std::bit_width(static_cast<unsigned long>(value)) - bits_;
  return static_cast<std::size_t>(shift) * static_cast<std::size_t>(half_) +
         static_cast<std::size_t>(value >> shift);
}

long Histogram::lowest_equivalent(std::size_t index) const noexcept {
  const long i = static_cast<long>(index);
  if (i < sub_bucket_count_) return i;
  const long shift = i / half_ - 1;
  return (i - shift * half_) << shift;
}

void Histogram::record(long value, long count) {
  if (count <= 0) return;
  if (value < 0) value = 0;
  const std::size_t index = index_of(value);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  counts_[index] += count;
  sum_ += value * count;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += count;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.bits_ == bits_) {
    if (other.counts_.size() > counts_.size())
      counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
      counts_[i] += other.counts_[i];
    sum_ += other.sum_;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    return;
  }
  // Layout mismatch: re-bucket at each bucket's lowest equivalent value,
  // then restore the exact extrema and sum from the source.
  const long sum_before = sum_;
  for (std::size_t i = 0; i < other.counts_.size(); ++i)
    if (other.counts_[i] > 0)
      record(other.lowest_equivalent(i), other.counts_[i]);
  sum_ = sum_before + other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

long Histogram::value_at_quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const long rank = static_cast<long>(q * static_cast<double>(count_ - 1));
  long seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > rank)
      return std::clamp(lowest_equivalent(i), min_, max_);
  }
  return max_;
}

Json Histogram::to_json(bool deterministic) const {
  Json doc = Json::object()
                 .set("schema", kHistSchema)
                 .set("sub_bucket_bits", bits_)
                 .set("count", count_);
  if (deterministic) {
    return doc.set("min", 0L)
        .set("max", 0L)
        .set("sum", 0L)
        .set("mean", 0.0)
        .set("p50", 0L)
        .set("p90", 0L)
        .set("p99", 0L)
        .set("buckets", Json::array());
  }
  doc.set("min", min())
      .set("max", max())
      .set("sum", sum_)
      .set("mean", mean())
      .set("p50", value_at_quantile(0.50))
      .set("p90", value_at_quantile(0.90))
      .set("p99", value_at_quantile(0.99));
  Json buckets = Json::array();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    buckets.push(Json::array().push(lowest_equivalent(i)).push(counts_[i]));
  }
  return doc.set("buckets", std::move(buckets));
}

ShardedHistogram::ShardedHistogram(int sub_bucket_bits, std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>(sub_bucket_bits));
}

void ShardedHistogram::record(long value) {
  static thread_local const std::size_t thread_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  Shard& shard = *shards_[thread_hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.hist.record(value);
}

long ShardedHistogram::count() const {
  long total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->hist.count();
  }
  return total;
}

Histogram ShardedHistogram::snapshot() const {
  Histogram merged(shards_.front()->hist.sub_bucket_bits());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    merged.merge(shard->hist);
  }
  return merged;
}

}  // namespace xlp::obs
