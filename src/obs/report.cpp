#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "obs/ledger.hpp"
#include "util/fsio.hpp"

namespace xlp::obs {

namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                    "#9467bd", "#ff7f0e", "#8c564b",
                                    "#17becf", "#7f7f7f"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string fmt(double v) {
  if (!std::isfinite(v)) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Linear blue -> red utilization color, clamped to [0, 1].
std::string heat_color(double u) {
  u = std::clamp(std::isfinite(u) ? u : 0.0, 0.0, 1.0);
  const auto lerp = [u](int a, int b) {
    return static_cast<int>(a + (b - a) * u + 0.5);
  };
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", lerp(0x21, 0xb2),
                lerp(0x66, 0x18), lerp(0xac, 0x2b));
  return buf;
}

double field_number(const Json& record, const char* key, double fallback) {
  const Json* v = record.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

/// Compact nanosecond label for histogram axes and quantile summaries.
std::string fmt_ns(double ns) {
  char buf[32];
  if (ns < 1e3) std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  else if (ns < 1e6) std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  else if (ns < 1e9) std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  else std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  return buf;
}

/// Buckets one trace event into the derived series map.
void absorb_trace_event(const Json& record, RunDirData& data) {
  const Json* event = record.find("event");
  if (event == nullptr || !event->is_string()) return;
  const std::string& name = event->as_string();
  if (name == "sim.progress") {
    const double cycle = field_number(record, "cycle", 0.0);
    data.trace_series["trace.sim.packets_in_flight"].emplace_back(
        cycle, field_number(record, "packets_in_flight", 0.0));
    data.trace_series["trace.sim.ejection_rate"].emplace_back(
        cycle, field_number(record, "ejection_rate", 0.0));
  } else if (name == "sa.cool") {
    const double moves = field_number(record, "moves", 0.0);
    data.trace_series["trace.sa.best"].emplace_back(
        moves, field_number(record, "best", 0.0));
    data.trace_series["trace.sa.current"].emplace_back(
        moves, field_number(record, "current", 0.0));
    data.trace_series["trace.sa.temperature"].emplace_back(
        moves, field_number(record, "temperature", 0.0));
    data.trace_series["trace.sa.acceptance"].emplace_back(
        moves, field_number(record, "acceptance", 0.0));
  } else if (name == "sim.channel_utilization") {
    data.heatmap = record;  // keep the last one found
  }
}

/// Buckets one parsed .json document by content shape.
void classify_json(Json doc, RunDirData& data) {
  if (doc.is_object()) {
    if (const Json* schema = doc.find("schema");
        schema != nullptr && schema->is_string()) {
      if (schema->as_string() == "xlp-series/1" && !data.series)
        data.series = std::move(doc);
      return;  // other schemas (bench, ledger) are not report inputs here
    }
    if (const Json* kind = doc.find("kind");
        kind != nullptr && kind->is_string() &&
        kind->as_string() == "stats" && doc.find("latency") != nullptr) {
      // xlpd --stats-json snapshot (the `stats` request payload).
      if (!data.server_stats) data.server_stats = std::move(doc);
      return;
    }
    if (doc.find("counters") != nullptr && doc.find("timers") != nullptr) {
      if (!data.metrics) data.metrics = std::move(doc);
      return;
    }
    if (doc.find("packets_offered") != nullptr &&
        doc.find("latency") != nullptr) {
      if (!data.stats) data.stats = std::move(doc);
      return;
    }
    return;
  }
  if (doc.is_array() && doc.size() > 0 && doc.at(0).is_object() &&
      doc.at(0).find("exclusive_us") != nullptr) {
    if (!data.profile) data.profile = std::move(doc);
  }
}

/// Appends two-column table rows for every numeric/bool/string member,
/// recursing one level into nested objects with a dotted prefix. Arrays
/// (e.g. channel_flits) are summarized by length only.
void stats_rows(const Json& obj, const std::string& prefix, std::string& out) {
  for (const auto& [key, value] : obj.members()) {
    const std::string label = prefix.empty() ? key : prefix + "." + key;
    if (value.is_object()) {
      if (prefix.empty()) stats_rows(value, key, out);
      continue;
    }
    std::string shown;
    if (value.is_number()) {
      shown = fmt(value.as_number());
    } else if (value.is_string()) {
      shown = html_escape(value.as_string());
    } else if (value.type() == Json::Type::kBool) {
      shown = value.as_bool() ? "true" : "false";
    } else if (value.is_array()) {
      shown = "[" + std::to_string(value.size()) + " entries]";
    } else {
      shown = "null";
    }
    out += "<tr><td>" + html_escape(label) + "</td><td class=\"num\">" +
           shown + "</td></tr>\n";
  }
}

}  // namespace

std::string html_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

RunDirData collect_run_dir(const std::string& dir) {
  RunDirData data;
  data.dir = dir;
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) names.push_back(entry.path().filename());
  }
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    const std::string path = (fs::path(dir) / name).string();
    if (ends_with(name, ".jsonl")) {
      if (name == "ledger.jsonl") {
        data.ledger = read_ledger(path);
        continue;
      }
      const auto content = util::read_file(path);
      if (!content) continue;
      std::istringstream in(*content);
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        auto record = Json::parse(line);
        if (!record || !record->is_object()) continue;
        if (const Json* schema = record->find("schema");
            schema != nullptr && schema->is_string() &&
            schema->as_string() == "svc-events/1") {
          data.server_events.push_back(std::move(*record));
          continue;
        }
        absorb_trace_event(*record, data);
      }
    } else if (ends_with(name, ".json")) {
      const auto content = util::read_file(path);
      if (!content) continue;
      if (auto doc = Json::parse(*content)) classify_json(std::move(*doc), data);
    }
  }
  return data;
}

std::vector<ChartSeries> chart_series_from_json(const Json& series_doc) {
  std::vector<ChartSeries> out;
  const Json* all = series_doc.find("series");
  if (all == nullptr || !all->is_object()) return out;
  for (const auto& [name, series] : all->members()) {
    ChartSeries chart;
    chart.name = name;
    if (const Json* points = series.find("points");
        points != nullptr && points->is_array()) {
      for (std::size_t i = 0; i < points->size(); ++i) {
        const Json& p = points->at(i);
        if (p.is_array() && p.size() >= 2 && p.at(0).is_number() &&
            p.at(1).is_number())
          chart.points.emplace_back(p.at(0).as_number(), p.at(1).as_number());
      }
    }
    out.push_back(std::move(chart));
  }
  return out;
}

std::string svg_line_chart(const std::string& title,
                           const std::vector<ChartSeries>& series, int width,
                           int height) {
  const double left = 58.0, right = 14.0, top = 26.0, bottom = 32.0;
  const double plot_w = width - left - right;
  const double plot_h = height - top - bottom;

  double xmin = 0.0, xmax = 0.0, ymin = 0.0, ymax = 0.0;
  bool any = false;
  for (const ChartSeries& s : series) {
    for (const auto& [x, y] : s.points) {
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      if (!any) {
        xmin = xmax = x;
        ymin = ymax = y;
        any = true;
      } else {
        xmin = std::min(xmin, x);
        xmax = std::max(xmax, x);
        ymin = std::min(ymin, y);
        ymax = std::max(ymax, y);
      }
    }
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) {
    ymin -= 0.5;
    ymax += 0.5;
  }
  const auto px = [&](double x) {
    return left + (x - xmin) / (xmax - xmin) * plot_w;
  };
  const auto py = [&](double y) {
    return top + plot_h - (y - ymin) / (ymax - ymin) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
      << height << "\" class=\"chart\">\n";
  svg << "<text x=\"" << left << "\" y=\"16\" class=\"ctitle\">"
      << html_escape(title) << "</text>\n";
  // Plot frame and min/max tick labels.
  svg << "<rect x=\"" << left << "\" y=\"" << top << "\" width=\"" << plot_w
      << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#999\" stroke-width=\"1\"/>\n";
  if (!any) {
    svg << "<text x=\"" << left + plot_w / 2 << "\" y=\""
        << top + plot_h / 2 << "\" text-anchor=\"middle\" class=\"clabel\">"
        << "no data</text>\n</svg>\n";
    return svg.str();
  }
  svg << "<text x=\"" << left << "\" y=\"" << height - 10
      << "\" class=\"clabel\">" << fmt(xmin) << "</text>\n";
  svg << "<text x=\"" << left + plot_w << "\" y=\"" << height - 10
      << "\" text-anchor=\"end\" class=\"clabel\">" << fmt(xmax)
      << "</text>\n";
  svg << "<text x=\"" << left - 6 << "\" y=\"" << top + plot_h
      << "\" text-anchor=\"end\" class=\"clabel\">" << fmt(ymin)
      << "</text>\n";
  svg << "<text x=\"" << left - 6 << "\" y=\"" << top + 10
      << "\" text-anchor=\"end\" class=\"clabel\">" << fmt(ymax)
      << "</text>\n";

  for (std::size_t i = 0; i < series.size(); ++i) {
    const ChartSeries& s = series[i];
    const char* color = kPalette[i % kPaletteSize];
    std::ostringstream pts;
    std::size_t plotted = 0;
    for (const auto& [x, y] : s.points) {
      if (!std::isfinite(x) || !std::isfinite(y)) continue;
      pts << (plotted ? " " : "") << fmt(px(x)) << "," << fmt(py(y));
      ++plotted;
    }
    if (plotted == 1) {
      const auto& [x, y] = s.points.front();
      svg << "<circle cx=\"" << fmt(px(x)) << "\" cy=\"" << fmt(py(y))
          << "\" r=\"3\" fill=\"" << color << "\"/>\n";
    } else if (plotted > 1) {
      svg << "<polyline fill=\"none\" stroke=\"" << color
          << "\" stroke-width=\"1.5\" points=\"" << pts.str() << "\"/>\n";
    }
    // Legend row, top-right, one line per series.
    const double ly = top + 12 + 14.0 * static_cast<double>(i);
    svg << "<rect x=\"" << left + plot_w - 150 << "\" y=\"" << ly - 8
        << "\" width=\"10\" height=\"10\" fill=\"" << color << "\"/>\n";
    svg << "<text x=\"" << left + plot_w - 136 << "\" y=\"" << ly
        << "\" class=\"clabel\">" << html_escape(s.name) << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string svg_latency_histogram(const std::string& title,
                                  const Json& hist) {
  const int width = 660, height = 220;
  const double left = 58.0, right = 14.0, top = 26.0, bottom = 32.0;
  const double plot_w = width - left - right;
  const double plot_h = height - top - bottom;

  const Json* buckets = hist.find("buckets");
  const double count = field_number(hist, "count", 0.0);
  std::ostringstream svg;
  svg << "<svg width=\"" << width << "\" height=\"" << height
      << "\" viewBox=\"0 0 " << width << " " << height
      << "\" class=\"chart\">\n";
  svg << "<text x=\"" << left << "\" y=\"16\" class=\"ctitle\">"
      << html_escape(title) << " &mdash; "
      << fmt(count) << " samples, p50 "
      << fmt_ns(field_number(hist, "p50", 0)) << ", p90 "
      << fmt_ns(field_number(hist, "p90", 0)) << ", p99 "
      << fmt_ns(field_number(hist, "p99", 0)) << ", max "
      << fmt_ns(field_number(hist, "max", 0)) << "</text>\n";
  svg << "<rect x=\"" << left << "\" y=\"" << top << "\" width=\"" << plot_w
      << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#999\" stroke-width=\"1\"/>\n";
  if (count <= 0 || buckets == nullptr || !buckets->is_array() ||
      buckets->size() == 0) {
    svg << "<text x=\"" << left + plot_w / 2 << "\" y=\""
        << top + plot_h / 2 << "\" text-anchor=\"middle\" class=\"clabel\">"
        << "no samples</text>\n</svg>\n";
    return svg.str();
  }

  double peak = 0.0;
  for (std::size_t i = 0; i < buckets->size(); ++i) {
    const Json& b = buckets->at(i);
    if (b.is_array() && b.size() >= 2)
      peak = std::max(peak, b.at(1).as_number());
  }
  if (peak <= 0.0) peak = 1.0;

  // One equal-width bar per populated bucket: the log-bucketed layout
  // already makes the x axis roughly logarithmic in latency.
  const std::size_t bars = buckets->size();
  const double bar_w = plot_w / static_cast<double>(bars);
  for (std::size_t i = 0; i < bars; ++i) {
    const Json& b = buckets->at(i);
    if (!b.is_array() || b.size() < 2) continue;
    const double c = b.at(1).as_number();
    const double h = plot_h * c / peak;
    svg << "<rect x=\"" << fmt(left + bar_w * static_cast<double>(i) + 0.5)
        << "\" y=\"" << fmt(top + plot_h - h) << "\" width=\""
        << fmt(std::max(bar_w - 1.0, 0.5)) << "\" height=\"" << fmt(h)
        << "\" fill=\"" << kPalette[0] << "\"><title>&ge; "
        << fmt_ns(b.at(0).as_number()) << ": " << fmt(c)
        << "</title></rect>\n";
  }
  svg << "<text x=\"" << left << "\" y=\"" << height - 10
      << "\" class=\"clabel\">"
      << fmt_ns(buckets->at(0).at(0).as_number()) << "</text>\n";
  svg << "<text x=\"" << left + plot_w << "\" y=\"" << height - 10
      << "\" text-anchor=\"end\" class=\"clabel\">"
      << fmt_ns(buckets->at(bars - 1).at(0).as_number()) << "</text>\n";
  svg << "<text x=\"" << left - 6 << "\" y=\"" << top + 10
      << "\" text-anchor=\"end\" class=\"clabel\">" << fmt(peak)
      << "</text>\n";
  svg << "<text x=\"" << left - 6 << "\" y=\"" << top + plot_h
      << "\" text-anchor=\"end\" class=\"clabel\">0</text>\n";
  svg << "</svg>\n";
  return svg.str();
}

std::string svg_channel_heatmap(const Json& heatmap_event) {
  const Json* channels = heatmap_event.find("channels");
  if (channels == nullptr || !channels->is_array() || channels->size() == 0)
    return "<p>No channel data.</p>\n";

  long max_router = 0;
  for (std::size_t i = 0; i < channels->size(); ++i) {
    const Json& ch = channels->at(i);
    max_router = std::max(max_router,
                          std::max(static_cast<long>(field_number(ch, "src", 0)),
                                   static_cast<long>(field_number(ch, "dst", 0))));
  }
  long mesh_w = static_cast<long>(field_number(heatmap_event, "width", 0));
  long mesh_h = static_cast<long>(field_number(heatmap_event, "height", 0));
  if (mesh_w <= 0) {
    // Older traces carry no dimensions; assume the paper's square mesh.
    mesh_w = static_cast<long>(
        std::lround(std::ceil(std::sqrt(static_cast<double>(max_router + 1)))));
    if (mesh_w <= 0) mesh_w = 1;
  }
  if (mesh_h <= 0) mesh_h = (max_router / mesh_w) + 1;

  const double cell = 56.0, pad = 34.0;
  const double width = pad * 2 + cell * static_cast<double>(mesh_w - 1);
  const double height = pad * 2 + cell * static_cast<double>(mesh_h - 1) + 30;
  const auto cx = [&](long r) { return pad + cell * static_cast<double>(r % mesh_w); };
  const auto cy = [&](long r) { return pad + cell * static_cast<double>(r / mesh_w); };

  std::ostringstream svg;
  svg << "<svg width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
      << height << "\" class=\"chart\">\n";
  // Channels first so router dots draw on top. Each direction is nudged
  // sideways by its perpendicular so both directed channels stay visible.
  for (std::size_t i = 0; i < channels->size(); ++i) {
    const Json& ch = channels->at(i);
    const long src = static_cast<long>(field_number(ch, "src", 0));
    const long dst = static_cast<long>(field_number(ch, "dst", 0));
    const double util = field_number(ch, "utilization", 0.0);
    double dx = cx(dst) - cx(src), dy = cy(dst) - cy(src);
    const double len = std::sqrt(dx * dx + dy * dy);
    if (len > 0) {
      dx /= len;
      dy /= len;
    }
    const double ox = -dy * 2.5, oy = dx * 2.5;
    svg << "<line x1=\"" << fmt(cx(src) + ox) << "\" y1=\""
        << fmt(cy(src) + oy) << "\" x2=\"" << fmt(cx(dst) + ox)
        << "\" y2=\"" << fmt(cy(dst) + oy) << "\" stroke=\""
        << heat_color(util) << "\" stroke-width=\"3\" stroke-linecap=\"round\""
        << "><title>" << src << "-&gt;" << dst << " u=" << fmt(util)
        << "</title></line>\n";
  }
  for (long r = 0; r < mesh_w * mesh_h; ++r) {
    svg << "<circle cx=\"" << fmt(cx(r)) << "\" cy=\"" << fmt(cy(r))
        << "\" r=\"5\" fill=\"#333\"/>\n";
  }
  // Utilization legend swatches along the bottom.
  for (int i = 0; i <= 4; ++i) {
    const double u = i / 4.0;
    const double lx = pad + 60.0 * i;
    svg << "<rect x=\"" << fmt(lx) << "\" y=\"" << height - 22
        << "\" width=\"12\" height=\"12\" fill=\"" << heat_color(u)
        << "\"/>\n<text x=\"" << fmt(lx + 16) << "\" y=\"" << height - 12
        << "\" class=\"clabel\">" << fmt(u) << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string html_page(const std::string& title, const std::string& body) {
  std::string out;
  out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
  out += "<meta charset=\"utf-8\">\n<title>" + html_escape(title) +
         "</title>\n";
  out +=
      "<style>\n"
      "body{font-family:system-ui,sans-serif;margin:24px;color:#222;"
      "max-width:1100px}\n"
      "h1{font-size:22px}h2{font-size:17px;margin-top:28px;"
      "border-bottom:1px solid #ddd;padding-bottom:4px}\n"
      "table{border-collapse:collapse;font-size:13px}\n"
      "td,th{border:1px solid #ddd;padding:3px 8px;text-align:left}\n"
      "th{background:#f5f5f5}td.num{text-align:right;"
      "font-variant-numeric:tabular-nums}\n"
      ".chart{margin:6px 12px 6px 0}\n"
      ".ctitle{font-size:13px;font-weight:600}\n"
      ".clabel{font-size:10px;fill:#555}\n"
      ".depth{color:#999}\n"
      "footer{margin-top:32px;font-size:11px;color:#888}\n"
      "</style>\n</head>\n<body>\n";
  out += body;
  out += "<footer>Generated by xlp report — self-contained, no external "
         "resources.</footer>\n</body>\n</html>\n";
  return out;
}

std::string render_report_html(const RunDirData& data) {
  std::string body;
  body += "<h1>xlp run report — " + html_escape(data.dir) + "</h1>\n";

  if (data.stats) {
    body += "<h2>Simulation stats</h2>\n<table>\n"
            "<tr><th>metric</th><th>value</th></tr>\n";
    stats_rows(*data.stats, "", body);
    body += "</table>\n";
  }

  std::vector<ChartSeries> recorded;
  if (data.series) recorded = chart_series_from_json(*data.series);
  if (!recorded.empty() || !data.trace_series.empty()) {
    body += "<h2>Time series</h2>\n";
    for (const ChartSeries& s : recorded)
      body += svg_line_chart(s.name, {s});
    for (const auto& [name, points] : data.trace_series)
      body += svg_line_chart(name, {{name, points}});
  }

  if (data.heatmap) {
    body += "<h2>Channel utilization heatmap</h2>\n";
    body += svg_channel_heatmap(*data.heatmap);
  }

  if (data.server_stats || !data.server_events.empty()) {
    body += "<h2>Server</h2>\n";
    if (data.server_stats) {
      // The dedup funnel and operational counters from the final stats
      // snapshot, then one histogram chart per request stage.
      body += "<table>\n<tr><th>metric</th><th>value</th></tr>\n";
      stats_rows(*data.server_stats, "", body);
      body += "</table>\n";
      if (const Json* latency = data.server_stats->find("latency");
          latency != nullptr && latency->is_object()) {
        for (const auto& [stage, hist] : latency->members())
          body += svg_latency_histogram(stage, hist);
      }
    }
    if (!data.server_events.empty()) {
      // Per-request end-to-end latency over server uptime, from the
      // svc-events/1 lifecycle stream.
      ChartSeries e2e;
      e2e.name = "end_to_end_ms";
      std::map<std::string, long> outcomes;
      for (const Json& event : data.server_events) {
        e2e.points.emplace_back(
            field_number(event, "received_s", 0.0),
            field_number(event, "end_to_end_ns", 0.0) / 1e6);
        const Json* outcome = event.find("outcome");
        ++outcomes[outcome != nullptr && outcome->is_string()
                       ? outcome->as_string()
                       : "?"];
      }
      body += svg_line_chart("request end-to-end latency (ms)", {e2e});
      body += "<table>\n<tr><th>outcome</th><th>requests</th></tr>\n";
      for (const auto& [outcome, n] : outcomes)
        body += "<tr><td>" + html_escape(outcome) + "</td><td class=\"num\">" +
                std::to_string(n) + "</td></tr>\n";
      body += "</table>\n";
    }
  }

  if (data.profile && data.profile->is_array()) {
    body += "<h2>Profiler</h2>\n<table>\n"
            "<tr><th>scope</th><th>hits</th><th>inclusive &micro;s</th>"
            "<th>exclusive &micro;s</th></tr>\n";
    for (std::size_t i = 0; i < data.profile->size(); ++i) {
      const Json& row = data.profile->at(i);
      const long depth = static_cast<long>(field_number(row, "depth", 0));
      std::string indent;
      for (long d = 0; d < depth; ++d)
        indent += "<span class=\"depth\">&middot;&nbsp;</span>";
      const Json* name = row.find("name");
      body += "<tr><td>" + indent +
              html_escape(name != nullptr && name->is_string()
                              ? name->as_string()
                              : "?") +
              "</td><td class=\"num\">" +
              fmt(field_number(row, "hits", 0)) + "</td><td class=\"num\">" +
              fmt(field_number(row, "inclusive_us", 0)) +
              "</td><td class=\"num\">" +
              fmt(field_number(row, "exclusive_us", 0)) + "</td></tr>\n";
    }
    body += "</table>\n";
  }

  if (data.metrics) {
    body += "<h2>Metrics</h2>\n<table>\n"
            "<tr><th>metric</th><th>value</th></tr>\n";
    if (const Json* counters = data.metrics->find("counters"))
      stats_rows(*counters, "counter", body);
    if (const Json* gauges = data.metrics->find("gauges"))
      stats_rows(*gauges, "gauge", body);
    if (const Json* timers = data.metrics->find("timers");
        timers != nullptr && timers->is_object()) {
      for (const auto& [name, stat] : timers->members()) {
        body += "<tr><td>timer." + html_escape(name) +
                "</td><td class=\"num\">" +
                fmt(field_number(stat, "seconds", 0)) + " s / " +
                fmt(field_number(stat, "count", 0)) + "</td></tr>\n";
      }
    }
    body += "</table>\n";
  }

  if (!data.ledger.empty()) {
    body += "<h2>Run ledger</h2>\n<table>\n"
            "<tr><th>run id</th><th>subcommand</th><th>seed</th>"
            "<th>git sha</th><th>wall s</th><th>exit</th><th>cache</th>"
            "<th>artifacts</th></tr>\n";
    for (const Json& rec : data.ledger) {
      const auto str = [&rec](const char* key) {
        const Json* v = rec.find(key);
        return v != nullptr && v->is_string() ? v->as_string()
                                             : std::string("?");
      };
      std::string sha = str("git_sha");
      if (sha.size() > 12) sha.resize(12);
      const Json* artifacts = rec.find("artifacts");
      body += "<tr><td><code>" + html_escape(str("run_id")) +
              "</code></td><td>" + html_escape(str("subcommand")) +
              "</td><td class=\"num\">" + fmt(field_number(rec, "seed", 0)) +
              "</td><td><code>" + html_escape(sha) +
              "</code></td><td class=\"num\">" +
              fmt(field_number(rec, "wall_seconds", 0)) +
              "</td><td class=\"num\">" +
              fmt(field_number(rec, "exit_status", 0)) + "</td><td>" +
              // svc requests carry cache_hit; direct runs omit the field.
              [&rec] {
                const Json* hit = rec.find("cache_hit");
                if (hit == nullptr || hit->type() != Json::Type::kBool)
                  return std::string();
                return std::string(hit->as_bool() ? "hit" : "miss");
              }() +
              "</td><td class=\"num\">" +
              std::to_string(artifacts != nullptr ? artifacts->size() : 0) +
              "</td></tr>\n";
    }
    body += "</table>\n";
  }

  return html_page("xlp report — " + data.dir, body);
}

}  // namespace xlp::obs
