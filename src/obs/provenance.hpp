#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace xlp::obs {

/// Identity stamp for a measured run: enough to tell whether two BENCH
/// documents are comparable (same code, same compiler, same machine) and
/// to reproduce one (seed). Fields are plain data so tests can pin them;
/// collect() fills them from the build and the environment.
struct Provenance {
  std::string git_sha = "unknown";   // HEAD commit, or "unknown"
  std::string compiler = "unknown";  // e.g. "gcc 13.2.0"
  std::string flags;                 // compile flags baked in by CMake
  std::string hostname = "unknown";
  std::uint64_t seed = 0;

  /// Build-time facts from compiler macros plus runtime facts from the
  /// environment. The git sha comes from the XLP_GIT_SHA environment
  /// variable when set (CI pins it), else from `git rev-parse HEAD` run in
  /// the current directory, else stays "unknown" — never throws.
  [[nodiscard]] static Provenance collect(std::uint64_t seed);

  /// {"git_sha": ..., "compiler": ..., "flags": ..., "hostname": ...,
  ///  "seed": ...} in that fixed order.
  [[nodiscard]] Json to_json() const;
};

}  // namespace xlp::obs
