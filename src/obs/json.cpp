#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace xlp::obs {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json& Json::set(std::string key, Json value) {
  XLP_REQUIRE(type_ == Type::kObject, "set() needs a JSON object");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  XLP_REQUIRE(type_ == Type::kArray, "push() needs a JSON array");
  elements_.push_back(std::move(value));
  return *this;
}

bool Json::as_bool() const {
  XLP_REQUIRE(type_ == Type::kBool, "not a JSON boolean");
  return bool_;
}

double Json::as_number() const {
  XLP_REQUIRE(type_ == Type::kNumber, "not a JSON number");
  return number_;
}

long Json::as_long() const {
  XLP_REQUIRE(type_ == Type::kNumber, "not a JSON number");
  return static_cast<long>(std::llround(number_));
}

const std::string& Json::as_string() const {
  XLP_REQUIRE(type_ == Type::kString, "not a JSON string");
  return string_;
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return elements_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  XLP_REQUIRE(type_ == Type::kArray && i < elements_.size(),
              "JSON array index out of range");
  return elements_[i];
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

namespace {

void format_number(double value, bool integral, std::string& out) {
  char buf[32];
  if (integral ||
      (std::rint(value) == value && std::fabs(value) < 9.007199254740992e15 &&
       std::isfinite(value))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llround(value)));
    out += buf;
    return;
  }
  if (!std::isfinite(value)) {  // JSON has no inf/nan; emit null
    out += "null";
    return;
  }
  // Shortest representation that round-trips: try 15 significant digits,
  // fall back to 17.
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  if (std::strtod(buf, nullptr) != value)
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: format_number(number_, integral_, out); break;
    case Type::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& e : elements_) {
        if (!first) out += ',';
        first = false;
        e.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        value.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

/// Recursive-descent parser over a string view; `pos` always points at the
/// next unconsumed character.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> parse_document() {
    skip_ws();
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<Json> parse_value() {
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n': return consume_literal("null") ? std::optional<Json>(Json())
                                               : std::nullopt;
      case 't': return consume_literal("true") ? std::optional<Json>(Json(true))
                                               : std::nullopt;
      case 'f': return consume_literal("false")
                           ? std::optional<Json>(Json(false))
                           : std::nullopt;
      case '"': return parse_string();
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::optional<Json> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return std::nullopt;
          }
          // BMP-only UTF-8 encoding (telemetry never needs more).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    bool fractional = false;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      fractional = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fractional = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (!digits) return std::nullopt;
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return fractional ? Json(value) : make_integral(value);
  }

  static Json make_integral(double value) {
    if (std::rint(value) == value && std::fabs(value) < 9.007199254740992e15)
      return Json(static_cast<long>(value));
    return Json(value);
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    if (++depth_ > kMaxDepth) return std::nullopt;
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return (--depth_, arr);
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      arr.push(std::move(*value));
      skip_ws();
      if (consume(']')) return (--depth_, arr);
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    if (++depth_ > kMaxDepth) return std::nullopt;
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return (--depth_, obj);
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      obj.set(key->as_string(), std::move(*value));
      skip_ws();
      if (consume('}')) return (--depth_, obj);
      if (!consume(',')) return std::nullopt;
    }
  }

  /// Nesting cap: one stack frame per level means adversarial inputs like
  /// ten thousand '[' would otherwise overflow the stack instead of
  /// failing cleanly. Telemetry documents are a handful of levels deep.
  static constexpr int kMaxDepth = 128;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::optional<Json> Json::parse(const std::string& text,
                                std::size_t* error_offset) {
  // Failure always unwinds immediately (every production returns nullopt
  // without consuming further input), so the cursor position after a
  // failed parse is the point the grammar stopped matching.
  Parser parser(text);
  auto value = parser.parse_document();
  if (!value && error_offset != nullptr) *error_offset = parser.pos();
  return value;
}

}  // namespace xlp::obs
