#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace xlp::obs {

/// Escapes `raw` for embedding inside a JSON string literal (the
/// surrounding quotes are not added): quote, backslash and control
/// characters become their \-sequences, everything else passes through.
[[nodiscard]] std::string json_escape(const std::string& raw);

/// Minimal ordered JSON value — just enough for telemetry: build a
/// document with set()/push(), serialize it with dump(), and parse one
/// back with parse() (used by tools/trace_summary and the round-trip
/// tests). Object members keep insertion order so emitted records are
/// byte-deterministic; duplicate keys are the caller's bug, not checked.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : type_(Type::kNull) {}
  Json(bool value) noexcept : type_(Type::kBool), bool_(value) {}
  Json(double value) noexcept : type_(Type::kNumber), number_(value) {}
  Json(long value) noexcept
      : type_(Type::kNumber),
        number_(static_cast<double>(value)),
        integral_(true) {}
  Json(int value) noexcept : Json(static_cast<long>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  /// Appends a member to an object (this must be an object). Returns *this
  /// so documents can be built fluently.
  Json& set(std::string key, Json value);
  /// Appends an element to an array (this must be an array).
  Json& push(Json value);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }

  /// Typed accessors; each throws PreconditionError on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] long as_long() const;  // rounds the stored number
  [[nodiscard]] const std::string& as_string() const;

  /// Array / object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const noexcept;
  /// i-th array element; throws when out of range or not an array.
  [[nodiscard]] const Json& at(std::size_t i) const;
  /// Pointer to the first member named `key`, nullptr when absent (or when
  /// this is not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Ordered members of an object (empty for other types).
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const noexcept {
    return members_;
  }

  /// Compact serialization (no whitespace). Numbers round-trip: integral
  /// values print without a fraction, doubles with just enough digits.
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON document; nullopt on any syntax error or trailing
  /// garbage. Accepts the full scalar/array/object grammar emitted by
  /// dump() (no \u surrogate pairs beyond the BMP; \uXXXX is decoded to
  /// UTF-8). Non-finite numbers never appear: dump() writes NaN/Inf as
  /// `null`, so every emitted document re-parses.
  [[nodiscard]] static std::optional<Json> parse(const std::string& text);

  /// Like parse(), but on failure stores the 0-based character offset
  /// where parsing stopped into `*error_offset` (the offending character,
  /// or text.size() for premature end of input). Untouched on success.
  [[nodiscard]] static std::optional<Json> parse(const std::string& text,
                                                 std::size_t* error_offset);

 private:
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  bool integral_ = false;
  std::string string_;
  std::vector<Json> elements_;                         // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

}  // namespace xlp::obs
