#pragma once

#include <string>

#include "topo/row_topology.hpp"

namespace xlp::topo {

/// Renders a 1D placement as ASCII art in the style of the paper's Fig. 2:
/// a router line followed by one line per express-link layer (layers are
/// the same interval partition the connection-matrix encoding uses).
///
///   0   1   2   3   4   5   6   7
///   o---o---o---o---o---o---o---o
///       +=======+
///               +===============+
///
/// Useful for logs, examples and documentation; every character is plain
/// ASCII so it renders everywhere.
[[nodiscard]] std::string render_row(const RowTopology& row);

}  // namespace xlp::topo
