#include "topo/render.hpp"

#include <sstream>

#include "topo/connection_matrix.hpp"

namespace xlp::topo {

std::string render_row(const RowTopology& row) {
  const int n = row.size();
  const int columns = 4 * (n - 1) + 1;  // router i sits at column 4*i
  std::ostringstream os;

  // Index line (mod 10 for wide rows) and router line.
  for (int r = 0; r < n; ++r) {
    os << (r % 10);
    if (r + 1 < n) os << "   ";
  }
  os << '\n';
  for (int r = 0; r < n; ++r) {
    os << 'o';
    if (r + 1 < n) os << "---";
  }
  os << '\n';

  // Layered express links: reuse the interval partition of the encoder so
  // overlapping links land on different lines.
  if (!row.express_links().empty()) {
    const auto matrix = ConnectionMatrix::encode(row, row.max_cut_count());
    for (int layer = 0; layer < matrix.layers(); ++layer) {
      const RowTopology decoded_layer = [&] {
        ConnectionMatrix single(n, 2);
        for (int i = 0; i < matrix.interior(); ++i)
          single.set_bit(0, i, matrix.bit(layer, i));
        return single.decode();
      }();
      if (decoded_layer.express_links().empty()) continue;
      std::string line(static_cast<std::size_t>(columns), ' ');
      for (const RowLink& link : decoded_layer.express_links()) {
        const int from = 4 * link.lo;
        const int to = 4 * link.hi;
        line[static_cast<std::size_t>(from)] = '+';
        line[static_cast<std::size_t>(to)] = '+';
        for (int c = from + 1; c < to; ++c)
          line[static_cast<std::size_t>(c)] = '=';
      }
      // Trim trailing spaces.
      while (!line.empty() && line.back() == ' ') line.pop_back();
      os << line << '\n';
    }
  }
  return os.str();
}

}  // namespace xlp::topo
