#include "topo/row_topology.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/numeric.hpp"

namespace xlp::topo {

RowTopology::RowTopology(int n) : n_(n) {
  XLP_REQUIRE(n >= 2, "a row needs at least two routers");
}

RowTopology::RowTopology(int n, std::vector<RowLink> express_links)
    : n_(n), express_(std::move(express_links)) {
  XLP_REQUIRE(n >= 2, "a row needs at least two routers");
  for (const RowLink& link : express_) validate_link(link);
  std::sort(express_.begin(), express_.end());
}

void RowTopology::validate_link(RowLink link) const {
  XLP_REQUIRE(link.lo >= 0 && link.hi < n_, "link endpoint out of range");
  XLP_REQUIRE(link.length() >= 2,
              "express link must span at least two hops; local links are "
              "implicit");
}

std::vector<RowLink> RowTopology::all_links() const {
  std::vector<RowLink> out;
  out.reserve(express_.size() + static_cast<std::size_t>(n_ - 1));
  for (int r = 0; r + 1 < n_; ++r) out.push_back({r, r + 1});
  out.insert(out.end(), express_.begin(), express_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void RowTopology::add_express(RowLink link) {
  validate_link(link);
  express_.insert(std::upper_bound(express_.begin(), express_.end(), link),
                  link);
}

bool RowTopology::remove_express(RowLink link) {
  auto it = std::lower_bound(express_.begin(), express_.end(), link);
  if (it == express_.end() || *it != link) return false;
  express_.erase(it);
  return true;
}

int RowTopology::cut_count(int cut) const {
  XLP_REQUIRE(cut >= 0 && cut < n_ - 1, "cut index out of range");
  int count = 1;  // the local link always crosses its own cut
  for (const RowLink& link : express_)
    if (link.crosses(cut)) ++count;
  return count;
}

std::vector<int> RowTopology::cut_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(n_ - 1), 1);
  for (const RowLink& link : express_)
    for (int cut = link.lo; cut < link.hi; ++cut) ++counts[cut];
  return counts;
}

int RowTopology::max_cut_count() const {
  const auto counts = cut_counts();
  return *std::max_element(counts.begin(), counts.end());
}

bool RowTopology::fits_link_limit(int link_limit) const {
  return max_cut_count() <= link_limit;
}

std::vector<int> RowTopology::neighbors_right(int r) const {
  XLP_REQUIRE(r >= 0 && r < n_, "router index out of range");
  std::vector<int> out;
  if (r + 1 < n_) out.push_back(r + 1);
  for (const RowLink& link : express_)
    if (link.lo == r) out.push_back(link.hi);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> RowTopology::neighbors_left(int r) const {
  XLP_REQUIRE(r >= 0 && r < n_, "router index out of range");
  std::vector<int> out;
  if (r - 1 >= 0) out.push_back(r - 1);
  for (const RowLink& link : express_)
    if (link.hi == r) out.push_back(link.lo);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int RowTopology::degree(int r) const {
  XLP_REQUIRE(r >= 0 && r < n_, "router index out of range");
  int deg = 0;
  if (r > 0) ++deg;
  if (r + 1 < n_) ++deg;
  for (const RowLink& link : express_)
    if (link.lo == r || link.hi == r) ++deg;
  return deg;
}

double RowTopology::average_degree() const {
  long total = 0;
  for (int r = 0; r < n_; ++r) total += degree(r);
  return static_cast<double>(total) / n_;
}

RowTopology RowTopology::mirrored() const {
  std::vector<RowLink> mirrored;
  mirrored.reserve(express_.size());
  for (const RowLink& link : express_)
    mirrored.push_back({n_ - 1 - link.hi, n_ - 1 - link.lo});
  return RowTopology(n_, std::move(mirrored));
}

std::string RowTopology::to_string() const {
  std::ostringstream os;
  os << n_ << ":[";
  for (const RowLink& link : express_)
    os << '(' << link.lo << ',' << link.hi << ')';
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RowTopology& row) {
  return os << row.to_string();
}

int full_link_limit(int n) {
  XLP_REQUIRE(n >= 2, "a row needs at least two routers");
  // Eq. (4): (n/2)*(n/2); for odd n the middle cut separates floor and ceil
  // halves.
  return (n / 2) * ((n + 1) / 2);
}

std::vector<int> valid_link_limits(int n) {
  const int c_full = full_link_limit(n);
  std::vector<int> out;
  for (int c = 1; c < c_full; c *= 2) out.push_back(c);
  out.push_back(c_full);
  if (!is_power_of_two(static_cast<std::uint64_t>(c_full))) {
    // keep the list sorted: c_full was appended after the largest power of
    // two below it, so the order is already correct.
  }
  return out;
}

}  // namespace xlp::topo
