#include "topo/builders.hpp"

#include "util/check.hpp"

namespace xlp::topo {

RowTopology make_plain_row(int n) { return RowTopology(n); }

RowTopology make_flattened_butterfly_row(int n) {
  std::vector<RowLink> express;
  for (int i = 0; i < n; ++i)
    for (int j = i + 2; j < n; ++j) express.push_back({i, j});
  return RowTopology(n, std::move(express));
}

RowTopology make_hfb_row(int n) {
  XLP_REQUIRE(n >= 2 && n % 2 == 0, "HFB needs an even row size");
  if (n <= 4) return make_flattened_butterfly_row(n);
  const int half = n / 2;
  std::vector<RowLink> express;
  for (int i = 0; i < half; ++i)
    for (int j = i + 2; j < half; ++j) express.push_back({i, j});
  for (int i = half; i < n; ++i)
    for (int j = i + 2; j < n; ++j) express.push_back({i, j});
  return RowTopology(n, std::move(express));
}

int flit_bits_for_limit(int link_limit, int base_flit_bits) {
  XLP_REQUIRE(link_limit >= 1, "link limit must be at least 1");
  XLP_REQUIRE(base_flit_bits % link_limit == 0,
              "link limit must divide the baseline flit width so the flit "
              "size stays an integer number of bits");
  return base_flit_bits / link_limit;
}

ExpressMesh make_mesh(int n, int base_flit_bits) {
  return ExpressMesh(make_plain_row(n), 1, base_flit_bits);
}

ExpressMesh make_flattened_butterfly(int n, int base_flit_bits) {
  const RowTopology row = make_flattened_butterfly_row(n);
  const int limit = row.max_cut_count();
  return ExpressMesh(row, limit, flit_bits_for_limit(limit, base_flit_bits));
}

ExpressMesh make_hfb(int n, int base_flit_bits) {
  const RowTopology row = make_hfb_row(n);
  const int limit = row.max_cut_count();
  return ExpressMesh(row, limit, flit_bits_for_limit(limit, base_flit_bits));
}

ExpressMesh make_design(const RowTopology& placement, int link_limit,
                        int base_flit_bits) {
  XLP_REQUIRE(placement.fits_link_limit(link_limit),
              "placement exceeds the link limit it is being packaged under");
  return ExpressMesh(placement, link_limit,
                     flit_bits_for_limit(link_limit, base_flit_bits));
}

ExpressMesh make_rect_mesh(int width, int height, int base_flit_bits) {
  return ExpressMesh(RowTopology(width), RowTopology(height), 1,
                     base_flit_bits);
}

ExpressMesh make_rect_design(const RowTopology& row_placement,
                             const RowTopology& col_placement, int link_limit,
                             int base_flit_bits) {
  XLP_REQUIRE(row_placement.fits_link_limit(link_limit) &&
                  col_placement.fits_link_limit(link_limit),
              "placement exceeds the link limit it is being packaged under");
  return ExpressMesh(row_placement, col_placement, link_limit,
                     flit_bits_for_limit(link_limit, base_flit_bits));
}

}  // namespace xlp::topo
