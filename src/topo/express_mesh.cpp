#include "topo/express_mesh.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"

namespace xlp::topo {

ExpressMesh::ExpressMesh(const RowTopology& placement, int link_limit,
                         int flit_bits)
    : ExpressMesh(placement, placement, link_limit, flit_bits) {}

ExpressMesh::ExpressMesh(const RowTopology& row_placement,
                         const RowTopology& col_placement, int link_limit,
                         int flit_bits)
    : width_(row_placement.size()),
      height_(col_placement.size()),
      link_limit_(link_limit),
      flit_bits_(flit_bits),
      rows_(static_cast<std::size_t>(col_placement.size()), row_placement),
      cols_(static_cast<std::size_t>(row_placement.size()), col_placement) {
  XLP_REQUIRE(link_limit >= 1, "link limit must be at least 1");
  XLP_REQUIRE(flit_bits >= 1, "flit width must be at least 1 bit");
}

ExpressMesh::ExpressMesh(std::vector<RowTopology> rows,
                         std::vector<RowTopology> cols, int link_limit,
                         int flit_bits)
    : width_(rows.empty() ? 0 : rows.front().size()),
      height_(cols.empty() ? 0 : cols.front().size()),
      link_limit_(link_limit),
      flit_bits_(flit_bits),
      rows_(std::move(rows)),
      cols_(std::move(cols)) {
  XLP_REQUIRE(link_limit >= 1, "link limit must be at least 1");
  XLP_REQUIRE(flit_bits >= 1, "flit width must be at least 1 bit");
  XLP_REQUIRE(!rows_.empty() && !cols_.empty(),
              "mesh needs at least one row and one column");
  XLP_REQUIRE(static_cast<int>(rows_.size()) == height_,
              "number of row topologies must equal the column length");
  XLP_REQUIRE(static_cast<int>(cols_.size()) == width_,
              "number of column topologies must equal the row length");
  for (const auto& r : rows_)
    XLP_REQUIRE(r.size() == width_, "all rows must have width routers");
  for (const auto& c : cols_)
    XLP_REQUIRE(c.size() == height_, "all columns must have height routers");
}

int ExpressMesh::side() const {
  XLP_REQUIRE(is_square(), "side() called on a rectangular design");
  return width_;
}

const RowTopology& ExpressMesh::row(int y) const {
  XLP_REQUIRE(y >= 0 && y < height_, "row index out of range");
  return rows_[static_cast<std::size_t>(y)];
}

const RowTopology& ExpressMesh::col(int x) const {
  XLP_REQUIRE(x >= 0 && x < width_, "column index out of range");
  return cols_[static_cast<std::size_t>(x)];
}

int ExpressMesh::node_id(Coord c) const {
  XLP_REQUIRE(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_,
              "coordinate out of range");
  return c.y * width_ + c.x;
}

Coord ExpressMesh::coord(int node_id) const {
  XLP_REQUIRE(node_id >= 0 && node_id < node_count(), "node id out of range");
  return {node_id % width_, node_id / width_};
}

int ExpressMesh::max_cut_count() const {
  int max_cut = 0;
  for (const auto& r : rows_) max_cut = std::max(max_cut, r.max_cut_count());
  for (const auto& c : cols_) max_cut = std::max(max_cut, c.max_cut_count());
  return max_cut;
}

int ExpressMesh::router_ports(Coord c) const {
  return row(c.y).degree(c.x) + col(c.x).degree(c.y) + 1;
}

double ExpressMesh::average_router_ports() const {
  long total = 0;
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x) total += router_ports({x, y});
  return static_cast<double>(total) / node_count();
}

long ExpressMesh::total_wire_units() const {
  long units = 0;
  auto add = [&units](const RowTopology& r) {
    for (const RowLink& link : r.all_links()) units += link.length();
  };
  for (const auto& r : rows_) add(r);
  for (const auto& c : cols_) add(c);
  return units;
}

long ExpressMesh::total_link_count() const {
  long count = 0;
  for (const auto& r : rows_)
    count += static_cast<long>(r.all_links().size());
  for (const auto& c : cols_)
    count += static_cast<long>(c.all_links().size());
  return count;
}

std::ostream& operator<<(std::ostream& os, const ExpressMesh& mesh) {
  os << mesh.width() << 'x' << mesh.height() << " C=" << mesh.link_limit()
     << " b=" << mesh.flit_bits() << "b row0=" << mesh.row(0).to_string();
  return os;
}

}  // namespace xlp::topo
