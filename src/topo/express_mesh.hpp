#pragma once

#include <iosfwd>
#include <vector>

#include "topo/row_topology.hpp"

namespace xlp::topo {

/// (x, y) router coordinates; x is the column, y is the row, both 0-based
/// with (0,0) in the top-left corner.
struct Coord {
  int x = 0;
  int y = 0;
  friend constexpr bool operator==(const Coord&, const Coord&) = default;
};

/// A two-dimensional n x n mesh augmented with express links, described by
/// one RowTopology per row and one per column (Section 4.2's reduction works
/// in the other direction: solve one row, replicate). The general-purpose
/// design uses the same placement for every row and column; the
/// application-specific variant of Section 5.6.4 allows them to differ.
///
/// The design point also carries its link limit C and the resulting flit
/// width b = base_flit_bits / C (Section 3, Eq. 3): both the simulator and
/// the serialization model need the width that the placement paid for.
class ExpressMesh {
 public:
  /// Homogeneous square design: the same 1D placement replicated across all
  /// n rows and all n columns (the paper's general-purpose construction).
  ExpressMesh(const RowTopology& placement, int link_limit, int flit_bits);

  /// Homogeneous rectangular design (width x height routers): one placement
  /// for every row (size = width) and one for every column (size = height).
  ExpressMesh(const RowTopology& row_placement,
              const RowTopology& col_placement, int link_limit,
              int flit_bits);

  /// Heterogeneous design: individual placements per row and per column
  /// (application-specific construction). Needs height row topologies of
  /// size width and width column topologies of size height; square and
  /// rectangular grids both work.
  ExpressMesh(std::vector<RowTopology> rows, std::vector<RowTopology> cols,
              int link_limit, int flit_bits);

  /// Routers per row.
  [[nodiscard]] int width() const noexcept { return width_; }
  /// Number of rows.
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool is_square() const noexcept { return width_ == height_; }
  /// Routers per side; only meaningful for square designs (throws
  /// otherwise). Kept because the paper's networks are all square.
  [[nodiscard]] int side() const;
  /// Total routers N = width * height.
  [[nodiscard]] int node_count() const noexcept { return width_ * height_; }

  [[nodiscard]] int link_limit() const noexcept { return link_limit_; }
  [[nodiscard]] int flit_bits() const noexcept { return flit_bits_; }

  [[nodiscard]] const RowTopology& row(int y) const;
  [[nodiscard]] const RowTopology& col(int x) const;
  [[nodiscard]] const std::vector<RowTopology>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] const std::vector<RowTopology>& cols() const noexcept {
    return cols_;
  }

  [[nodiscard]] int node_id(Coord c) const;
  [[nodiscard]] Coord coord(int node_id) const;

  /// Largest cross-section link count over every row and column; the design
  /// is feasible iff this does not exceed link_limit().
  [[nodiscard]] int max_cut_count() const;
  [[nodiscard]] bool is_feasible() const { return max_cut_count() <= link_limit_; }

  /// Router port count including the network-interface port: row degree +
  /// column degree + 1. Drives the crossbar power model (b * k^2).
  [[nodiscard]] int router_ports(Coord c) const;
  [[nodiscard]] double average_router_ports() const;

  /// Total unit-length wire segments (both dimensions, counting a length-L
  /// bidirectional link as L units); proportional to wiring area.
  [[nodiscard]] long total_wire_units() const;

  /// Total number of bidirectional links in the design (local + express).
  [[nodiscard]] long total_link_count() const;

  friend bool operator==(const ExpressMesh&, const ExpressMesh&) = default;

 private:
  int width_;
  int height_;
  int link_limit_;
  int flit_bits_;
  std::vector<RowTopology> rows_;  // height_ entries, indexed by y
  std::vector<RowTopology> cols_;  // width_ entries, indexed by x
};

std::ostream& operator<<(std::ostream& os, const ExpressMesh& mesh);

}  // namespace xlp::topo
