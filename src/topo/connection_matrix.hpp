#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "topo/row_topology.hpp"
#include "util/rng.hpp"

namespace xlp::topo {

/// The paper's connection matrix (Section 4.4.2): a binary matrix of size
/// (n-2) x (C-1) that encodes express-link placements for the 1D problem
/// P̄(n, C) such that *every* matrix decodes to a valid placement (local
/// links present, every cross-section carries at most C links) and every
/// valid placement is reachable from some matrix.
///
/// Rows of the matrix are *layers* (one per express-link "track"; one track
/// is reserved for the local links and is not represented). Columns are the
/// n-2 interior routers. A set bit at (layer, router r) means the two link
/// segments on both sides of router r in that layer are fused; a maximal run
/// of set bits over routers [a..b] decodes to the express link (a-1, b+1).
/// Unit segments not covered by any run are dropped — they would merely
/// duplicate a local link and cannot reduce latency (Section 5.4 discusses
/// exactly this unused bandwidth).
class ConnectionMatrix {
 public:
  /// All-zero matrix for P̄(n, C). Requires n >= 2 and C >= 1; for n <= 2 or
  /// C == 1 the matrix is empty and decodes to the plain row.
  ConnectionMatrix(int n, int link_limit);

  [[nodiscard]] int row_size() const noexcept { return n_; }
  [[nodiscard]] int link_limit() const noexcept { return c_; }
  [[nodiscard]] int layers() const noexcept { return c_ - 1; }
  /// Number of interior routers, i.e. columns of the matrix.
  [[nodiscard]] int interior() const noexcept { return n_ > 2 ? n_ - 2 : 0; }
  /// Total number of flippable connection points.
  [[nodiscard]] int bit_count() const noexcept {
    return layers() * interior();
  }

  /// Connection point at (layer, interior router index 0..n-3); interior
  /// index i corresponds to physical router i+1.
  [[nodiscard]] bool bit(int layer, int interior_idx) const;
  void set_bit(int layer, int interior_idx, bool value);
  void flip_bit(int layer, int interior_idx);
  /// Flat accessors over [0, bit_count()): used by the SA move generator.
  [[nodiscard]] bool bit_flat(int idx) const;
  void flip_flat(int idx);

  /// Uniformly random matrix: each connection point set with probability
  /// `density`. Used as the OnlySA random starting point.
  static ConnectionMatrix random(int n, int link_limit, Rng& rng,
                                 double density = 0.5);

  /// Decodes into a row topology. The result always satisfies
  /// fits_link_limit(link_limit()).
  [[nodiscard]] RowTopology decode() const;

  /// Encodes an existing valid placement into a matrix whose decode() yields
  /// a topology with the same reachability-relevant links. Express links are
  /// assigned to layers by greedy interval partitioning, which succeeds for
  /// every placement with max_cut_count() <= link_limit (the constructive
  /// half of the paper's reachability claim). Throws PreconditionError when
  /// the topology does not fit the limit.
  static ConnectionMatrix encode(const RowTopology& row, int link_limit);

  /// "101|010"-style dump, layers separated by '|'.
  [[nodiscard]] std::string to_string() const;

  /// Inverse of to_string() for P̄(n, link_limit): parses a '|'-separated
  /// layer dump back into a matrix. Throws PreconditionError when the text
  /// does not describe exactly layers() rows of interior() '0'/'1' digits.
  /// Used by checkpoint restore, so a resumed run starts from the exact
  /// matrix that was saved.
  static ConnectionMatrix from_string(int n, int link_limit,
                                      const std::string& text);

  friend bool operator==(const ConnectionMatrix&,
                         const ConnectionMatrix&) = default;

 private:
  int n_;
  int c_;
  std::vector<std::uint8_t> bits_;  // layer-major, layers() * interior()
};

std::ostream& operator<<(std::ostream& os, const ConnectionMatrix& m);

}  // namespace xlp::topo
