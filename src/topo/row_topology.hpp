#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace xlp::topo {

/// A bidirectional link between two routers of the same row (or column),
/// identified by their 0-based positions. `lo < hi` always holds. A link with
/// `hi - lo == 1` is a *local* link; `hi - lo >= 2` is an *express* link.
struct RowLink {
  int lo = 0;
  int hi = 0;

  [[nodiscard]] constexpr int length() const noexcept { return hi - lo; }
  [[nodiscard]] constexpr bool is_express() const noexcept {
    return length() >= 2;
  }
  /// True when this link crosses the cross-section between routers
  /// `cut` and `cut+1`.
  [[nodiscard]] constexpr bool crosses(int cut) const noexcept {
    return lo <= cut && cut < hi;
  }

  friend constexpr auto operator<=>(const RowLink&, const RowLink&) = default;
};

/// One-dimensional express-link topology: a row (or column) of `n` routers.
///
/// Local links between every adjacent pair are implicit and always present —
/// a valid placement must contain them (Section 4.3 of the paper) so they are
/// not part of the mutable state. Express links are kept as a sorted multiset
/// (the connection-matrix search space can legitimately produce duplicated
/// parallel links; they consume cross-section capacity but do not reduce
/// latency).
class RowTopology {
 public:
  /// A row of n routers with only local links. Requires n >= 2.
  explicit RowTopology(int n);

  /// A row of n routers with the given express links; each must satisfy
  /// 0 <= lo, hi < n, and hi - lo >= 2.
  RowTopology(int n, std::vector<RowLink> express_links);

  [[nodiscard]] int size() const noexcept { return n_; }

  /// Sorted express links (duplicates possible).
  [[nodiscard]] const std::vector<RowLink>& express_links() const noexcept {
    return express_;
  }

  /// All links including the n-1 implicit local ones, sorted.
  [[nodiscard]] std::vector<RowLink> all_links() const;

  /// Adds one express link (keeps the set sorted).
  void add_express(RowLink link);

  /// Removes one instance of the given express link; returns false when the
  /// link is not present.
  bool remove_express(RowLink link);

  /// Number of links (local + express) crossing the cross-section between
  /// routers `cut` and `cut+1`. Requires 0 <= cut < n-1.
  [[nodiscard]] int cut_count(int cut) const;

  /// All n-1 cut counts, left to right.
  [[nodiscard]] std::vector<int> cut_counts() const;

  /// The maximum cut count over all cross-sections; this is the smallest
  /// link limit C under which this placement is valid.
  [[nodiscard]] int max_cut_count() const;

  /// True when every cross-section carries at most `link_limit` links.
  [[nodiscard]] bool fits_link_limit(int link_limit) const;

  /// Rightward neighbors of router `r`: sorted positions `r2 > r` directly
  /// connected to `r` (local neighbor first). Requires 0 <= r < n.
  [[nodiscard]] std::vector<int> neighbors_right(int r) const;

  /// Leftward neighbors of router `r`: sorted positions `r2 < r` directly
  /// connected to `r`.
  [[nodiscard]] std::vector<int> neighbors_left(int r) const;

  /// Degree of router `r` within the row (local + express, both directions).
  [[nodiscard]] int degree(int r) const;

  /// Average within-row degree; Section 4.6 uses this to argue the crossbar
  /// port count grows sub-linearly in C.
  [[nodiscard]] double average_degree() const;

  /// Returns a topology with express links mirrored around the row center;
  /// the pairwise-average objective is invariant under this map.
  [[nodiscard]] RowTopology mirrored() const;

  /// Compact text form, e.g. "8:[(0,2)(2,7)]".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const RowTopology&, const RowTopology&) = default;

 private:
  void validate_link(RowLink link) const;

  int n_;
  std::vector<RowLink> express_;  // sorted
};

std::ostream& operator<<(std::ostream& os, const RowTopology& row);

/// The paper's C_full = n^2/4 (Eq. 4): the cross-section count of a fully
/// connected row, attained between the two middle routers.
[[nodiscard]] int full_link_limit(int n);

/// Link limits worth exploring for an n-router row: powers of two from 1 to
/// C_full (Section 4.1: the flit size is a power of two that divides the
/// packet sizes, so only a few C values are possible). When C_full is not a
/// power of two, it is included as the final entry.
[[nodiscard]] std::vector<int> valid_link_limits(int n);

}  // namespace xlp::topo
