#pragma once

#include "topo/express_mesh.hpp"
#include "topo/row_topology.hpp"

namespace xlp::topo {

/// Baseline flit width of the mesh network in bits (Section 5.1); with the
/// cross-section limit C the per-link width becomes kBaseFlitBits / C.
inline constexpr int kBaseFlitBits = 256;

/// Row with local links only.
[[nodiscard]] RowTopology make_plain_row(int n);

/// Fully connected row: an express link between every non-adjacent pair;
/// this is one row of a flattened butterfly [Kim et al., MICRO'07].
[[nodiscard]] RowTopology make_flattened_butterfly_row(int n);

/// One row of the hybrid flattened butterfly (HFB) of Section 5.1 / Fig. 4:
/// the row is split into two halves, each half fully connected, the halves
/// joined only by the local link across the middle. For n <= 4 the HFB
/// degenerates to the plain flattened butterfly. Requires even n.
[[nodiscard]] RowTopology make_hfb_row(int n);

/// Per-link flit width for a given limit: base_flit_bits / C. Requires C to
/// divide base_flit_bits.
[[nodiscard]] int flit_bits_for_limit(int link_limit,
                                      int base_flit_bits = kBaseFlitBits);

/// Baseline n x n mesh design point (C = 1, full-width links).
[[nodiscard]] ExpressMesh make_mesh(int n,
                                    int base_flit_bits = kBaseFlitBits);

/// Flattened-butterfly design point: fully connected rows and columns,
/// C = n^2/4.
[[nodiscard]] ExpressMesh make_flattened_butterfly(
    int n, int base_flit_bits = kBaseFlitBits);

/// Hybrid flattened butterfly design point (the paper's main fixed-topology
/// competitor). Its link limit is the actual maximum cross-section of the
/// HFB row.
[[nodiscard]] ExpressMesh make_hfb(int n, int base_flit_bits = kBaseFlitBits);

/// Wraps an optimized 1D placement into the homogeneous 2D design point for
/// the limit it was optimized under. The placement must fit `link_limit` and
/// `link_limit` must divide base_flit_bits.
[[nodiscard]] ExpressMesh make_design(const RowTopology& placement,
                                      int link_limit,
                                      int base_flit_bits = kBaseFlitBits);

/// Rectangular baseline mesh: width x height routers, local links only.
[[nodiscard]] ExpressMesh make_rect_mesh(int width, int height,
                                         int base_flit_bits = kBaseFlitBits);

/// Rectangular homogeneous design: one placement for rows (size = width)
/// and one for columns (size = height), both fitting `link_limit`.
[[nodiscard]] ExpressMesh make_rect_design(
    const RowTopology& row_placement, const RowTopology& col_placement,
    int link_limit, int base_flit_bits = kBaseFlitBits);

}  // namespace xlp::topo
