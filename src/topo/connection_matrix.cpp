#include "topo/connection_matrix.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"

namespace xlp::topo {

ConnectionMatrix::ConnectionMatrix(int n, int link_limit)
    : n_(n), c_(link_limit) {
  XLP_REQUIRE(n >= 2, "a row needs at least two routers");
  XLP_REQUIRE(link_limit >= 1, "link limit must be at least 1");
  bits_.assign(static_cast<std::size_t>(bit_count()), 0);
}

bool ConnectionMatrix::bit(int layer, int interior_idx) const {
  XLP_REQUIRE(layer >= 0 && layer < layers(), "layer out of range");
  XLP_REQUIRE(interior_idx >= 0 && interior_idx < interior(),
              "interior index out of range");
  return bits_[static_cast<std::size_t>(layer * interior() + interior_idx)] !=
         0;
}

void ConnectionMatrix::set_bit(int layer, int interior_idx, bool value) {
  XLP_REQUIRE(layer >= 0 && layer < layers(), "layer out of range");
  XLP_REQUIRE(interior_idx >= 0 && interior_idx < interior(),
              "interior index out of range");
  bits_[static_cast<std::size_t>(layer * interior() + interior_idx)] =
      value ? 1 : 0;
}

void ConnectionMatrix::flip_bit(int layer, int interior_idx) {
  set_bit(layer, interior_idx, !bit(layer, interior_idx));
}

bool ConnectionMatrix::bit_flat(int idx) const {
  XLP_REQUIRE(idx >= 0 && idx < bit_count(), "flat index out of range");
  return bits_[static_cast<std::size_t>(idx)] != 0;
}

void ConnectionMatrix::flip_flat(int idx) {
  XLP_REQUIRE(idx >= 0 && idx < bit_count(), "flat index out of range");
  bits_[static_cast<std::size_t>(idx)] ^= 1;
}

ConnectionMatrix ConnectionMatrix::random(int n, int link_limit, Rng& rng,
                                          double density) {
  ConnectionMatrix m(n, link_limit);
  for (auto& b : m.bits_) b = rng.bernoulli(density) ? 1 : 0;
  return m;
}

RowTopology ConnectionMatrix::decode() const {
  std::vector<RowLink> express;
  for (int layer = 0; layer < layers(); ++layer) {
    int run_start = -1;  // interior index where the current run began
    for (int i = 0; i <= interior(); ++i) {
      const bool set = i < interior() && bit(layer, i);
      if (set && run_start < 0) run_start = i;
      if (!set && run_start >= 0) {
        // Run over interior indices [run_start, i-1] = physical routers
        // [run_start+1, i]; it fuses the segments on both sides into the
        // express link (run_start, i+1) in physical router coordinates.
        express.push_back({run_start, i + 1});
        run_start = -1;
      }
    }
  }
  return RowTopology(n_, std::move(express));
}

ConnectionMatrix ConnectionMatrix::encode(const RowTopology& row,
                                          int link_limit) {
  XLP_REQUIRE(row.fits_link_limit(link_limit),
              "topology exceeds the link limit; cannot encode");
  ConnectionMatrix m(row.size(), link_limit);

  // Greedy interval partitioning: process express links by left endpoint and
  // put each into the first layer whose previously placed links end at or
  // before this link's start. Two links may share an endpoint router within
  // a layer: link (a,b) sets interior bits a+1..b-1 and link (b,c) sets
  // b+1..c-1, so the unset bit at router b keeps the decode() runs separate.
  // Greedy by left endpoint uses exactly max-cut-overlap layers, which is
  // <= C-1 for any placement that fits the limit.
  std::vector<int> layer_free_from(static_cast<std::size_t>(m.layers()), 0);
  for (const RowLink& link : row.express_links()) {
    int chosen = -1;
    for (int layer = 0; layer < m.layers(); ++layer) {
      if (layer_free_from[layer] <= link.lo) {
        chosen = layer;
        break;
      }
    }
    XLP_CHECK(chosen >= 0,
              "interval partitioning ran out of layers for a placement that "
              "fits the link limit");
    for (int r = link.lo + 1; r <= link.hi - 1; ++r)
      m.set_bit(chosen, r - 1, true);
    layer_free_from[chosen] = link.hi;
  }
  return m;
}

std::string ConnectionMatrix::to_string() const {
  std::string out;
  for (int layer = 0; layer < layers(); ++layer) {
    if (layer > 0) out += '|';
    for (int i = 0; i < interior(); ++i) out += bit(layer, i) ? '1' : '0';
  }
  return out;
}

ConnectionMatrix ConnectionMatrix::from_string(int n, int link_limit,
                                               const std::string& text) {
  ConnectionMatrix m(n, link_limit);
  if (m.layers() == 0 || m.interior() == 0) {
    // Degenerate matrices dump as "" (no layers) or "|"-runs of empty
    // rows (no interior routers); accept exactly what to_string() emits.
    XLP_REQUIRE(text == m.to_string(),
                "matrix text does not match the degenerate shape of P(n, C)");
    return m;
  }
  std::vector<std::string> rows;
  std::string row;
  for (const char ch : text) {
    if (ch == '|') {
      rows.push_back(row);
      row.clear();
    } else {
      row += ch;
    }
  }
  rows.push_back(row);
  XLP_REQUIRE(static_cast<int>(rows.size()) == m.layers(),
              "matrix text has the wrong number of layers");
  for (int layer = 0; layer < m.layers(); ++layer) {
    const std::string& r = rows[static_cast<std::size_t>(layer)];
    XLP_REQUIRE(static_cast<int>(r.size()) == m.interior(),
                "matrix layer has the wrong number of columns");
    for (int i = 0; i < m.interior(); ++i) {
      const char ch = r[static_cast<std::size_t>(i)];
      XLP_REQUIRE(ch == '0' || ch == '1', "matrix text must be 0/1 digits");
      m.set_bit(layer, i, ch == '1');
    }
  }
  return m;
}

std::ostream& operator<<(std::ostream& os, const ConnectionMatrix& m) {
  return os << m.to_string();
}

}  // namespace xlp::topo
