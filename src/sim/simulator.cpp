#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "fault/reroute.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "route/deadlock.hpp"
#include "runctl/control.hpp"
#include "util/check.hpp"
#include "util/numeric.hpp"

namespace xlp::sim {

Simulator::Simulator(const Network& network,
                     const traffic::TrafficMatrix& demand,
                     const SimConfig& config)
    : net_(network), config_(config), rng_(config.seed) {
  XLP_REQUIRE(demand.width() == net_.width() &&
                  demand.height() == net_.height(),
              "traffic matrix dimensions do not match the network");
  XLP_REQUIRE(config_.vcs_per_port >= 1, "need at least one VC per port");
  XLP_REQUIRE(config_.routing != RoutingMode::kO1Turn ||
                  config_.vcs_per_port >= 2,
              "O1TURN needs at least two VCs per port (one per "
              "orientation class)");
  XLP_REQUIRE(config_.pipeline_stages >= 1, "pipeline needs >= 1 stage");

  const int nodes = net_.node_count();
  const int vcs = config_.vcs_per_port;

  routers_.resize(static_cast<std::size_t>(nodes));
  input_port_used_.resize(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) {
    auto& router = routers_[static_cast<std::size_t>(r)];
    const int ports = net_.port_count(r);
    router.vc_depth = config_.vc_depth_flits(ports, net_.flit_bits());
    router.in.assign(static_cast<std::size_t>(ports),
                     std::vector<InVc>(static_cast<std::size_t>(vcs)));
    router.credits.assign(static_cast<std::size_t>(ports),
                          std::vector<int>(static_cast<std::size_t>(vcs), 0));
    router.rr.assign(static_cast<std::size_t>(ports), 0);
    input_port_used_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(ports), 0);
  }
  // Output credits reflect the *downstream* router's buffer depth.
  for (int r = 0; r < nodes; ++r) {
    auto& router = routers_[static_cast<std::size_t>(r)];
    for (int p = 1; p < net_.port_count(r); ++p) {
      const int peer = net_.port(r, p).peer_router;
      const int depth = routers_[static_cast<std::size_t>(peer)].vc_depth;
      for (int v = 0; v < vcs; ++v)
        router.credits[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(v)] = depth;
    }
  }
  ni_credits_.resize(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node)
    ni_credits_[static_cast<std::size_t>(node)].assign(
        static_cast<std::size_t>(vcs),
        routers_[static_cast<std::size_t>(node)].vc_depth);

  channel_flits_.resize(net_.channels().size());
  channel_credits_.resize(net_.channels().size());
  channel_flits_measured_.assign(net_.channels().size(), 0);

  // Per-node destination distributions.
  nodes_.resize(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    auto& st = nodes_[static_cast<std::size_t>(node)];
    st.rate = demand.node_rate(node);
    XLP_REQUIRE(st.rate <= 1.0,
                "per-node injection above one packet per cycle is not "
                "representable by Bernoulli injection");
    if (st.rate <= 0.0) continue;
    double cum = 0.0;
    for (int dst = 0; dst < nodes; ++dst) {
      const double r = demand.rate(node, dst);
      if (r <= 0.0) continue;
      cum += r / st.rate;
      st.dest_cdf.push_back(cum);
      st.dest_node.push_back(dst);
    }
    XLP_CHECK(!st.dest_cdf.empty(), "positive rate needs destinations");
    st.dest_cdf.back() = 1.0;  // guard against rounding
  }

  // Packet-size mix CDF.
  double cum = 0.0;
  for (const auto& pc : config_.mix.classes()) {
    cum += pc.fraction;
    mix_cdf_.push_back(cum);
    mix_bits_.push_back(pc.bits);
  }
  mix_cdf_.back() = 1.0;

  activity_.flit_bits = net_.flit_bits();

  // Fault machinery. With an empty schedule everything below stays inert:
  // routing_ aliases the network's pristine tables and extra_pipeline_ is
  // all zero, so the fault-free fast path is bit-identical to before.
  routing_ = &net_.routing();
  faults_enabled_ = !config_.faults.empty();
  extra_pipeline_.assign(static_cast<std::size_t>(nodes), 0);
  channel_dead_.assign(net_.channels().size(), 0);
  if (faults_enabled_) {
    XLP_REQUIRE(config_.faults.max_retries >= 0,
                "max_retries must be non-negative");
    const auto& events = config_.faults.events;
    event_active_.assign(events.size(), 0);
    for (std::size_t e = 0; e < events.size(); ++e) {
      const FaultEvent& ev = events[e];
      XLP_REQUIRE(ev.cycle >= 0, "fault cycle must be non-negative");
      XLP_REQUIRE(ev.recover_cycle < 0 || ev.recover_cycle > ev.cycle,
                  "recovery must come after the fault");
      for (const fault::LinkFault& lf : ev.faults.link_faults()) {
        const bool is_row = lf.id.dim == fault::Dim::kRow;
        const int span = is_row ? net_.width() : net_.height();
        const int count = is_row ? net_.height() : net_.width();
        XLP_REQUIRE(lf.id.index < count && lf.id.link.hi < span,
                    "link fault outside the mesh");
      }
      for (const fault::PortFault& pf : ev.faults.port_faults())
        XLP_REQUIRE(pf.router < nodes, "port fault outside the mesh");
      // Order 1 = activation, 0 = recovery; at equal cycles recoveries
      // apply first so a replacement fault set takes over atomically.
      fault_edges_.emplace_back(ev.cycle, 1, e);
      if (ev.recover_cycle >= 0)
        fault_edges_.emplace_back(ev.recover_cycle, 0, e);
    }
    std::sort(fault_edges_.begin(), fault_edges_.end());
  }
}

int Simulator::pick_packet_bits() {
  const double u = rng_.uniform01();
  for (std::size_t k = 0; k < mix_cdf_.size(); ++k)
    if (u <= mix_cdf_[k]) return mix_bits_[k];
  return mix_bits_.back();
}

std::pair<int, int> Simulator::vc_class(bool y_first) const {
  if (config_.routing != RoutingMode::kO1Turn)
    return {0, config_.vcs_per_port};
  const int half = config_.vcs_per_port / 2;
  return y_first ? std::pair{half, config_.vcs_per_port}
                 : std::pair{0, half};
}

bool Simulator::choose_orientation(const route::MeshRouting& routing,
                                   int src, int dst, bool* y_first) {
  switch (config_.routing) {
    case RoutingMode::kXY: *y_first = false; break;
    case RoutingMode::kYX: *y_first = true; break;
    case RoutingMode::kO1Turn: {
      if (!faults_enabled_) {
        *y_first = rng_.bernoulli(0.5);
        return true;
      }
      // A degraded network may have severed one orientation class; O1TURN
      // traffic survives on the other.
      const bool xy_ok =
          routing.reachable(src, dst, route::Orientation::kXYFirst);
      const bool yx_ok =
          routing.reachable(src, dst, route::Orientation::kYXFirst);
      if (!xy_ok && !yx_ok) return false;
      *y_first = (xy_ok && yx_ok) ? rng_.bernoulli(0.5) : yx_ok;
      return true;
    }
  }
  if (!faults_enabled_) return true;
  return routing.reachable(src, dst,
                           *y_first ? route::Orientation::kYXFirst
                                    : route::Orientation::kXYFirst);
}

long Simulator::create_packet(int src, int dst, int bits) {
  bool y_first = false;
  if (!choose_orientation(admission_routing(), src, dst, &y_first)) {
    ++packets_unroutable_;
    return -1;
  }

  Packet pk;
  pk.id = static_cast<long>(packets_.size());
  pk.src = src;
  pk.dst = dst;
  pk.bits = bits;
  pk.flits = latency::PacketMix::flits_for(bits, net_.flit_bits());
  pk.created = cycle_;
  pk.measured = in_measurement_window();
  pk.y_first = y_first;
  if (pk.measured) ++outstanding_measured_;
  packets_.push_back(pk);

  auto& queue = nodes_[static_cast<std::size_t>(src)].source_queue;
  for (int s = 0; s < pk.flits; ++s) {
    Flit f;
    f.packet = pk.id;
    f.seq = s;
    f.is_head = s == 0;
    f.is_tail = s == pk.flits - 1;
    f.dst = dst;
    f.y_first = y_first;
    queue.push_back(f);
  }
  return pk.id;
}

void Simulator::schedule_packet(int src, int dst, int bits,
                                long create_cycle) {
  XLP_REQUIRE(src >= 0 && src < net_.node_count() && dst >= 0 &&
                  dst < net_.node_count() && src != dst,
              "bad trace packet endpoints");
  XLP_REQUIRE(cycle_ == 0, "schedule_packet must be called before run()");
  scheduled_.emplace_back(create_cycle, src, dst, bits);
}

long Simulator::packet_latency(long packet_id) const {
  XLP_REQUIRE(packet_id >= 0 &&
                  packet_id < static_cast<long>(packets_.size()),
              "unknown packet id");
  const Packet& pk = packets_[static_cast<std::size_t>(packet_id)];
  return pk.ejected < 0 ? -1 : pk.ejected - pk.created;
}

void Simulator::generate_traffic(int node) {
  auto& st = nodes_[static_cast<std::size_t>(node)];
  if (st.rate <= 0.0 || !rng_.bernoulli(st.rate)) return;

  const double u = rng_.uniform01();
  const auto it = std::lower_bound(st.dest_cdf.begin(), st.dest_cdf.end(), u);
  const int dst =
      st.dest_node[static_cast<std::size_t>(it - st.dest_cdf.begin())];
  create_packet(node, dst, pick_packet_bits());
}

void Simulator::inject(int node) {
  auto& st = nodes_[static_cast<std::size_t>(node)];
  // Graceful reconfiguration gates new packets while the network drains on
  // the old tables (sources keep queueing). A packet already mid-injection
  // keeps sending: its head holds VC claims along an old-table path, so the
  // tail must follow and release them before the tables may swap.
  if (draining_for_swap_ && st.active_vc < 0) return;
  if (st.source_queue.empty()) return;
  Flit& f = st.source_queue.front();

  if (f.is_head && st.active_vc < 0) {
    // NI-side VC allocation on the router's local input port, restricted
    // to the packet's orientation class.
    auto& port0 = routers_[static_cast<std::size_t>(node)].in[0];
    const auto [vc_lo, vc_hi] = vc_class(f.y_first);
    for (int v = vc_lo; v < vc_hi; ++v) {
      if (!port0[static_cast<std::size_t>(v)].owned) {
        port0[static_cast<std::size_t>(v)].owned = true;
        port0[static_cast<std::size_t>(v)].owner = f.packet;
        st.active_vc = v;
        st.active_packet = f.packet;
        break;
      }
    }
    if (st.active_vc < 0) return;  // all local VCs of this class busy
  }
  if (st.active_vc < 0) return;
  auto& credit =
      ni_credits_[static_cast<std::size_t>(node)]
                 [static_cast<std::size_t>(st.active_vc)];
  if (credit <= 0) return;

  Flit sent = f;
  sent.vc = st.active_vc;
  st.source_queue.pop_front();
  --credit;

  // NI-to-router wiring is length 0: the flit is written into the router's
  // local input buffer next cycle (the arrival handler stamps ready_cycle).
  ni_arrivals_.push_back({cycle_ + 1, node, sent});
  ++in_network_flits_;
  ++injected_flits_total_;

  if (sent.is_head) packets_[sent.packet].injected = cycle_ + 1;
  if (sent.is_tail) {
    st.active_vc = -1;
    st.active_packet = -1;
  }
}

void Simulator::deliver_channel_arrivals() {
  // NI arrivals.
  while (!ni_arrivals_.empty() &&
         std::get<0>(ni_arrivals_.front()) <= cycle_) {
    auto [when, node, f] = ni_arrivals_.front();
    ni_arrivals_.pop_front();
    XLP_CHECK(when == cycle_, "missed an NI arrival");
    f.ready_cycle = cycle_ + (config_.pipeline_stages - 1) +
                    extra_pipeline_[static_cast<std::size_t>(node)];
    auto& vc = routers_[static_cast<std::size_t>(node)]
                   .in[0][static_cast<std::size_t>(f.vc)];
    XLP_CHECK(static_cast<int>(vc.buffer.size()) <
                  routers_[static_cast<std::size_t>(node)].vc_depth,
              "credit protocol violated: NI overflow");
    vc.buffer.push_back(f);
    if (in_measurement_window()) ++activity_.buffer_writes;
  }
  // Channel arrivals.
  for (std::size_t ch = 0; ch < channel_flits_.size(); ++ch) {
    auto& queue = channel_flits_[ch];
    while (!queue.empty() && queue.front().first <= cycle_) {
      Flit f = queue.front().second;
      queue.pop_front();
      const auto& channel = net_.channels()[ch];
      f.ready_cycle =
          cycle_ + (config_.pipeline_stages - 1) +
          extra_pipeline_[static_cast<std::size_t>(channel.dst_router)];
      auto& vc = routers_[static_cast<std::size_t>(channel.dst_router)]
                     .in[static_cast<std::size_t>(channel.dst_port)]
                     [static_cast<std::size_t>(f.vc)];
      XLP_CHECK(
          static_cast<int>(vc.buffer.size()) <
              routers_[static_cast<std::size_t>(channel.dst_router)].vc_depth,
          "credit protocol violated: input buffer overflow");
      vc.buffer.push_back(f);
      if (in_measurement_window()) ++activity_.buffer_writes;
    }
  }
}

void Simulator::deliver_credits() {
  for (std::size_t ch = 0; ch < channel_credits_.size(); ++ch) {
    auto& queue = channel_credits_[ch];
    while (!queue.empty() && queue.front().first <= cycle_) {
      const int vc = queue.front().second;
      queue.pop_front();
      const auto& channel = net_.channels()[ch];
      ++routers_[static_cast<std::size_t>(channel.src_router)]
            .credits[static_cast<std::size_t>(channel.src_port)]
                    [static_cast<std::size_t>(vc)];
    }
  }
  while (!ni_credit_returns_.empty() &&
         std::get<0>(ni_credit_returns_.front()) <= cycle_) {
    auto [when, node, vc] = ni_credit_returns_.front();
    ni_credit_returns_.pop_front();
    ++ni_credits_[static_cast<std::size_t>(node)]
                 [static_cast<std::size_t>(vc)];
  }
}

int Simulator::output_port(int router, int dst, bool y_first) const {
  if (router == dst) return 0;
  const int next = routing_->next_hop(router, dst,
                                      y_first ? route::Orientation::kYXFirst
                                              : route::Orientation::kXYFirst);
  const int p = net_.port_to(router, next);
  XLP_CHECK(p >= 1, "routing selected a node that is not a neighbor");
  return p;
}

void Simulator::allocate(int router) {
  auto& rs = routers_[static_cast<std::size_t>(router)];
  const int ports = net_.port_count(router);
  for (int p = 0; p < ports; ++p) {
    for (int v = 0; v < config_.vcs_per_port; ++v) {
      InVc& q = rs.in[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
      if (q.active || q.buffer.empty() || !q.buffer.front().is_head) continue;
      const Flit& head = q.buffer.front();
      // Route computation against the live (possibly rerouted) tables.
      const int out_port = output_port(router, head.dst, head.y_first);
      if (out_port == 0) {  // ejection needs no downstream VC
        q.out_port = 0;
        q.out_vc = 0;
        q.active = true;
        continue;
      }
      // VC allocation on the downstream input port, within the packet's
      // orientation class.
      const auto& port = net_.port(router, out_port);
      auto& peer_vcs = routers_[static_cast<std::size_t>(port.peer_router)]
                           .in[static_cast<std::size_t>(port.peer_port)];
      const auto [vc_lo, vc_hi] = vc_class(head.y_first);
      for (int u = vc_lo; u < vc_hi; ++u) {
        if (!peer_vcs[static_cast<std::size_t>(u)].owned) {
          peer_vcs[static_cast<std::size_t>(u)].owned = true;
          peer_vcs[static_cast<std::size_t>(u)].owner = head.packet;
          q.out_port = out_port;
          q.out_vc = u;
          q.active = true;
          // Virtual-express bypass: a straight-through packet (arrived via a
          // neighbor port and continues in the same dimension and
          // direction) skips the front pipeline stages at this router.
          if (config_.virtual_express_bypass && p != 0) {
            const auto& in_port = net_.port(router, p);
            q.bypass = port.dx == -in_port.dx && port.dy == -in_port.dy;
          }
          break;
        }
      }
    }
  }
}

void Simulator::arbitrate(int router) {
  auto& rs = routers_[static_cast<std::size_t>(router)];
  const int ports = net_.port_count(router);
  const int vcs = config_.vcs_per_port;
  auto& used = input_port_used_[static_cast<std::size_t>(router)];
  std::fill(used.begin(), used.end(), 0);

  const int slots = ports * vcs;
  for (int out = 0; out < ports; ++out) {
    int& rr = rs.rr[static_cast<std::size_t>(out)];

    // Select a winner: first eligible after the round-robin pointer, or the
    // eligible flit with the oldest packet under age-based arbitration.
    int chosen = -1;
    long chosen_age = std::numeric_limits<long>::max();
    long chosen_ready = 0;
    for (int offset = 1; offset <= slots; ++offset) {
      const int idx = (rr + offset) % slots;
      const int p = idx / vcs;
      const int v = idx % vcs;
      if (used[static_cast<std::size_t>(p)]) continue;
      InVc& q =
          rs.in[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
      if (!q.active || q.out_port != out || q.buffer.empty()) continue;
      const Flit& front = q.buffer.front();
      const long effective_ready =
          q.bypass ? front.ready_cycle - (config_.pipeline_stages - 1)
                   : front.ready_cycle;
      if (effective_ready > cycle_) continue;
      if (out != 0 &&
          rs.credits[static_cast<std::size_t>(out)]
                    [static_cast<std::size_t>(q.out_vc)] <= 0)
        continue;
      if (config_.arbiter == Arbiter::kRoundRobin) {
        chosen = idx;
        chosen_ready = effective_ready;
        break;
      }
      const long age =
          packets_[static_cast<std::size_t>(front.packet)].created;
      if (age < chosen_age) {
        chosen_age = age;
        chosen = idx;
        chosen_ready = effective_ready;
      }
    }
    if (chosen < 0) continue;
    {
      const int idx = chosen;
      const int p = idx / vcs;
      const int v = idx % vcs;
      InVc& q =
          rs.in[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
      const long effective_ready = chosen_ready;

      // Grant: switch traversal this cycle, link traversal next.
      Flit f = q.buffer.front();
      q.buffer.pop_front();
      used[static_cast<std::size_t>(p)] = 1;
      rr = idx;
      ++grants_total_;

      const bool window = in_measurement_window();
      if (window) {
        ++activity_.buffer_reads;
        ++activity_.crossbar_traversals;
        contention_cycles_ += cycle_ - effective_ready;
        ++grants_measured_;
      }

      // Return the freed buffer slot upstream.
      if (p == 0) {
        ni_credit_returns_.push_back({cycle_ + 1, router, v});
      } else {
        const int in_ch = net_.port(router, p).in_channel;
        channel_credits_[static_cast<std::size_t>(in_ch)].push_back(
            {cycle_ + 1, v});
      }

      if (out == 0) {
        --in_network_flits_;
        ++ejected_flits_total_;
        Packet& pk = packets_[f.packet];
        if (f.is_head) pk.head_ejected = cycle_ + 1;
        if (f.is_tail) {
          pk.ejected = cycle_ + 1;
          ++ejected_total_;
          last_ejection_cycle_ = cycle_ + 1;
          if (pk.measured) --outstanding_measured_;
        }
      } else {
        const auto& port = net_.port(router, out);
        if (faults_enabled_)
          XLP_CHECK(!channel_dead_[static_cast<std::size_t>(
                        port.out_channel)],
                    "granted a flit onto a dead channel");
        f.vc = q.out_vc;
        if (f.is_head) ++packets_[f.packet].hops;
        channel_flits_[static_cast<std::size_t>(port.out_channel)].push_back(
            {cycle_ + 1 + port.length, f});
        --rs.credits[static_cast<std::size_t>(out)]
                    [static_cast<std::size_t>(q.out_vc)];
        if (window) {
          activity_.link_flit_units += port.length;
          ++channel_flits_measured_[static_cast<std::size_t>(
              port.out_channel)];
        }
      }

      if (f.is_tail) {
        q.active = false;
        q.owned = false;
        q.bypass = false;
        q.out_port = -1;
        q.out_vc = -1;
        q.owner = -1;
      }
    }
  }
}

SimStats Simulator::run() {
  const long measure_end = config_.warmup_cycles + config_.measure_cycles;
  const long hard_end = measure_end + config_.drain_cycles;
  const int nodes = net_.node_count();
  const bool tracing = config_.trace != nullptr && config_.trace->enabled() &&
                       config_.trace_interval_cycles > 0;
  const bool recording =
      config_.series != nullptr && config_.series_interval_cycles > 0;

  std::sort(scheduled_.begin(), scheduled_.end());
  const obs::ProfileScope run_scope("sim.run");
  runctl::RunStatus status = runctl::RunStatus::kCompleted;
  for (cycle_ = 0; cycle_ < hard_end; ++cycle_) {
    if (cycle_ >= measure_end && outstanding_measured_ == 0 &&
        next_scheduled_ >= scheduled_.size())
      break;
    if (config_.control != nullptr && config_.control->stop_requested()) {
      status = config_.control->status();
      break;
    }
    if (tracing && cycle_ > 0 && cycle_ % config_.trace_interval_cycles == 0)
      emit_progress();
    // Single branch on the disabled path (bench/micro_core sim_run_8x8
    // gates this at <1% overhead); everything else happens inside.
    if (recording) {
      window_flit_cycles_ += in_network_flits_;
      if (cycle_ > 0 && cycle_ % config_.series_interval_cycles == 0)
        record_series();
    }
    if (faults_enabled_) {
      process_fault_edges();
      if (draining_for_swap_ && in_network_flits_ == 0 &&
          !injection_in_progress())
        perform_swap();
    }
    {
      // Link/credit traversal: flits and credits finishing their wires.
      const obs::ProfileScope phase("sim.traverse");
      deliver_channel_arrivals();
      deliver_credits();
    }
    {
      const obs::ProfileScope phase("sim.inject");
      while (next_scheduled_ < scheduled_.size() &&
             std::get<0>(scheduled_[next_scheduled_]) <= cycle_) {
        const auto [when, src, dst, bits] = scheduled_[next_scheduled_++];
        create_packet(src, dst, bits);
      }
      for (int node = 0; node < nodes; ++node) {
        generate_traffic(node);
        inject(node);
      }
    }
    {
      // Route computation + VC allocation for every head flit.
      const obs::ProfileScope phase("sim.route_vc_alloc");
      for (int r = 0; r < nodes; ++r) allocate(r);
    }
    {
      // Switch allocation + the grant's crossbar/link traversal.
      const obs::ProfileScope phase("sim.sw_alloc");
      for (int r = 0; r < nodes; ++r) arbitrate(r);
    }
  }
  if (status == runctl::RunStatus::kCompleted) {
    activity_.measured_cycles = config_.measure_cycles;
  } else {
    // Stopped mid-run: normalize rate statistics over the part of the
    // measurement window that actually elapsed (at least one cycle so the
    // divisions below stay well-defined).
    activity_.measured_cycles = std::max<long>(
        1, std::min(config_.measure_cycles, cycle_ - config_.warmup_cycles));
  }
  SimStats stats = finalize();
  stats.status = status;
  if (config_.trace != nullptr && config_.trace->enabled()) {
    emit_channel_heatmap(stats);
    config_.trace->emit(
        "sim.done",
        obs::Json::object()
            .set("cycles", cycle_)
            .set("packets_offered", stats.packets_offered)
            .set("packets_finished", stats.packets_finished)
            .set("avg_latency", stats.avg_latency)
            .set("drained", stats.drained)
            .set("status", runctl::to_string(status)));
  }
  return stats;
}

void Simulator::process_fault_edges() {
  bool changed = false;
  while (next_fault_edge_ < fault_edges_.size() &&
         std::get<0>(fault_edges_[next_fault_edge_]) <= cycle_) {
    const auto [when, order, ev] = fault_edges_[next_fault_edge_++];
    const bool is_recovery = order == 0;
    event_active_[ev] = is_recovery ? 0 : 1;
    changed = true;
    if (config_.trace != nullptr && config_.trace->enabled())
      config_.trace->emit(
          is_recovery ? "fault.recovered" : "fault.injected",
          obs::Json::object()
              .set("cycle", cycle_)
              .set("faults", config_.faults.events[ev].faults.to_string())
              .set("policy", config_.faults.policy ==
                                     FaultPolicy::kDrainThenSwap
                                 ? "drain_then_swap"
                                 : "drop_retransmit"));
  }
  if (!changed) return;
  active_faults_ = {};
  for (std::size_t e = 0; e < event_active_.size(); ++e) {
    if (!event_active_[e]) continue;
    for (const fault::LinkFault& lf :
         config_.faults.events[e].faults.link_faults())
      active_faults_.add(lf);
    for (const fault::PortFault& pf :
         config_.faults.events[e].faults.port_faults())
      active_faults_.add(pf);
  }
  apply_fault_epoch();
}

void Simulator::apply_fault_epoch() {
  fault::RerouteResult rr =
      fault::reroute(net_.mesh(), active_faults_, net_.hop_weights());
  XLP_CHECK(rr.deadlock_free(),
            "rerouted tables are not deadlock-free: " +
                route::describe_channels(rr.cycle_witness));
  pending_routing_ = std::move(rr.routing);
  pending_unreachable_xy_ = std::move(rr.unreachable_xy);
  pending_unreachable_yx_ = std::move(rr.unreachable_yx);
  if (config_.faults.policy == FaultPolicy::kDrainThenSwap &&
      (in_network_flits_ > 0 || injection_in_progress())) {
    draining_for_swap_ = true;
    return;
  }
  perform_swap();
}

bool Simulator::injection_in_progress() const {
  // A node with a claimed NI VC is mid-packet: flits already routed by the
  // old tables are (or will be) holding VCs downstream, so a table swap
  // must wait for its tail even when no flit is currently in the network.
  for (const NodeState& st : nodes_)
    if (st.active_vc >= 0) return true;
  return false;
}

void Simulator::perform_swap() {
  draining_for_swap_ = false;

  // Dead directed channels under the new fault set.
  const int w = net_.width();
  std::vector<char> dead(net_.channels().size(), 0);
  for (std::size_t ch = 0; ch < net_.channels().size(); ++ch) {
    const auto& channel = net_.channels()[ch];
    const int sx = channel.src_router % w, sy = channel.src_router / w;
    const int dx = channel.dst_router % w, dy = channel.dst_router / w;
    dead[ch] = sy == dy
                   ? active_faults_.kills(fault::Dim::kRow, sy, sx, dx)
                   : active_faults_.kills(fault::Dim::kCol, sx, sy, dy);
  }

  // Victim selection (kDropRetransmit): every in-flight packet whose route
  // under the OLD tables crosses a newly dead channel. Conservative — a
  // worm that already cleared the channel is purged and retransmitted too.
  std::vector<long> victim_ids;
  if (config_.faults.policy == FaultPolicy::kDropRetransmit) {
    std::vector<char> victim(packets_.size(), 0);
    for (const Packet& pk : packets_) {
      if (pk.injected < 0 || pk.ejected >= 0 || pk.dropped) continue;
      const std::vector<int> path =
          routing_->path(pk.src, pk.dst,
                         pk.y_first ? route::Orientation::kYXFirst
                                    : route::Orientation::kXYFirst);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const int p = net_.port_to(path[i], path[i + 1]);
        XLP_CHECK(p >= 1, "old route left the topology");
        const int ch = net_.port(path[i], p).out_channel;
        if (dead[static_cast<std::size_t>(ch)]) {
          victim[static_cast<std::size_t>(pk.id)] = 1;
          victim_ids.push_back(pk.id);
          break;
        }
      }
    }
    if (!victim_ids.empty()) purge_packets(victim);
  }

  // The swap itself. in_network_flits_ == 0 here under kDrainThenSwap.
  degraded_routing_ = std::move(*pending_routing_);
  pending_routing_.reset();
  routing_ = &*degraded_routing_;
  channel_dead_ = std::move(dead);
  for (int r = 0; r < net_.node_count(); ++r)
    extra_pipeline_[static_cast<std::size_t>(r)] =
        active_faults_.extra_pipeline_cycles(r);

  // Queued-but-uninjected packets chose their orientation under the old
  // tables; re-check it. A severed orientation flips to the surviving one
  // under O1TURN (no rng draw, to keep the stream stable) or loses the
  // packet under pure DOR.
  for (auto& st : nodes_) {
    if (st.source_queue.empty()) continue;
    std::deque<Flit> kept;
    for (Flit& f : st.source_queue) {
      Packet& pk = packets_[static_cast<std::size_t>(f.packet)];
      if (pk.dropped) continue;
      if (pk.injected >= 0) {  // mid-injection: orientation is committed
        kept.push_back(f);
        continue;
      }
      if (f.is_head &&
          !routing_->reachable(pk.src, pk.dst,
                               pk.y_first ? route::Orientation::kYXFirst
                                          : route::Orientation::kXYFirst)) {
        const bool other_ok =
            config_.routing == RoutingMode::kO1Turn &&
            routing_->reachable(pk.src, pk.dst,
                                pk.y_first ? route::Orientation::kXYFirst
                                           : route::Orientation::kYXFirst);
        if (other_ok) {
          pk.y_first = !pk.y_first;
        } else {
          pk.dropped = true;
          ++packets_lost_;
          if (pk.measured) --outstanding_measured_;
          continue;
        }
      }
      f.y_first = pk.y_first;
      kept.push_back(f);
    }
    st.source_queue = std::move(kept);
  }

  // Retransmissions ride the new tables and keep the original creation
  // timestamp, so measured latency includes the fault penalty.
  long retransmitted_now = 0;
  for (const long id : victim_ids) {
    Packet& old = packets_[static_cast<std::size_t>(id)];
    if (old.retries >= config_.faults.max_retries) {
      ++packets_lost_;
      continue;
    }
    bool y_first = false;
    if (!choose_orientation(*routing_, old.src, old.dst, &y_first)) {
      ++packets_lost_;
      continue;
    }
    Packet pk;
    pk.id = static_cast<long>(packets_.size());
    pk.src = old.src;
    pk.dst = old.dst;
    pk.bits = old.bits;
    pk.flits = old.flits;
    pk.created = old.created;
    pk.measured = old.measured;
    pk.y_first = y_first;
    pk.retries = old.retries + 1;
    old.superseded = true;
    if (pk.measured) ++outstanding_measured_;
    packets_.push_back(pk);
    auto& queue = nodes_[static_cast<std::size_t>(pk.src)].source_queue;
    for (int s = 0; s < pk.flits; ++s) {
      Flit f;
      f.packet = pk.id;
      f.seq = s;
      f.is_head = s == 0;
      f.is_tail = s == pk.flits - 1;
      f.dst = pk.dst;
      f.y_first = y_first;
      queue.push_back(f);
    }
    ++packets_retransmitted_;
    ++retransmitted_now;
  }

  ++reroutes_;
  if (config_.trace != nullptr && config_.trace->enabled())
    config_.trace->emit(
        "fault.rerouted",
        obs::Json::object()
            .set("cycle", cycle_)
            .set("faults", active_faults_.to_string())
            .set("unreachable_xy",
                 static_cast<long>(pending_unreachable_xy_.size()))
            .set("unreachable_yx",
                 static_cast<long>(pending_unreachable_yx_.size()))
            .set("packets_dropped", static_cast<long>(victim_ids.size()))
            .set("packets_retransmitted", retransmitted_now));
}

void Simulator::purge_packets(const std::vector<char>& victim) {
  const int nodes = net_.node_count();
  const auto is_victim = [&victim](long id) {
    return id >= 0 && id < static_cast<long>(victim.size()) &&
           victim[static_cast<std::size_t>(id)] != 0;
  };

  // Source queues and the NI-side packet claim.
  for (auto& st : nodes_) {
    if (!st.source_queue.empty()) {
      std::deque<Flit> kept;
      for (const Flit& f : st.source_queue)
        if (!is_victim(f.packet)) kept.push_back(f);
      st.source_queue = std::move(kept);
    }
    if (is_victim(st.active_packet)) {
      st.active_vc = -1;
      st.active_packet = -1;
    }
  }

  // Flits in flight from an NI into its router: the NI credit was consumed
  // at injection; restore it directly.
  {
    std::deque<std::tuple<long, int, Flit>> kept;
    for (auto& entry : ni_arrivals_) {
      const Flit& f = std::get<2>(entry);
      if (is_victim(f.packet)) {
        ++ni_credits_[static_cast<std::size_t>(std::get<1>(entry))]
                     [static_cast<std::size_t>(f.vc)];
        --in_network_flits_;
      } else {
        kept.push_back(std::move(entry));
      }
    }
    ni_arrivals_ = std::move(kept);
  }

  // Flits on the wire: the upstream credit was decremented at grant time
  // and the flit will never occupy the downstream buffer; restore directly.
  for (std::size_t ch = 0; ch < channel_flits_.size(); ++ch) {
    auto& queue = channel_flits_[ch];
    if (queue.empty()) continue;
    const auto& channel = net_.channels()[ch];
    std::deque<std::pair<long, Flit>> kept;
    for (auto& entry : queue) {
      if (is_victim(entry.second.packet)) {
        ++routers_[static_cast<std::size_t>(channel.src_router)]
              .credits[static_cast<std::size_t>(channel.src_port)]
                      [static_cast<std::size_t>(entry.second.vc)];
        --in_network_flits_;
      } else {
        kept.push_back(std::move(entry));
      }
    }
    queue = std::move(kept);
  }

  // Router input buffers: freed slots return upstream over the normal
  // credit path (one cycle), and any VC reservation a victim held is
  // released — including owned-but-empty VCs claimed via allocation.
  for (int r = 0; r < nodes; ++r) {
    auto& rs = routers_[static_cast<std::size_t>(r)];
    for (int p = 0; p < net_.port_count(r); ++p) {
      for (int v = 0; v < config_.vcs_per_port; ++v) {
        InVc& q =
            rs.in[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
        if (!q.buffer.empty()) {
          std::deque<Flit> kept;
          for (const Flit& f : q.buffer) {
            if (is_victim(f.packet)) {
              if (p == 0) {
                ni_credit_returns_.push_back({cycle_ + 1, r, v});
              } else {
                const int in_ch = net_.port(r, p).in_channel;
                channel_credits_[static_cast<std::size_t>(in_ch)].push_back(
                    {cycle_ + 1, v});
              }
              --in_network_flits_;
            } else {
              kept.push_back(f);
            }
          }
          q.buffer = std::move(kept);
        }
        if (q.owned && is_victim(q.owner)) {
          q.owned = false;
          q.active = false;
          q.bypass = false;
          q.out_port = -1;
          q.out_vc = -1;
          q.owner = -1;
        }
      }
    }
  }

  for (std::size_t id = 0; id < victim.size(); ++id) {
    if (!victim[id]) continue;
    Packet& pk = packets_[id];
    pk.dropped = true;
    ++packets_dropped_;
    if (pk.measured) --outstanding_measured_;
  }
}

const char* Simulator::phase_name(long cycle) const noexcept {
  if (cycle < config_.warmup_cycles) return "warmup";
  if (cycle < config_.warmup_cycles + config_.measure_cycles)
    return "measure";
  return "drain";
}

void Simulator::emit_progress() {
  const long in_flight = static_cast<long>(packets_.size()) - ejected_total_;
  const long interval = config_.trace_interval_cycles;
  const double ejection_rate =
      static_cast<double>(ejected_total_ - last_snapshot_ejected_) /
      static_cast<double>(interval);
  last_snapshot_ejected_ = ejected_total_;
  last_progress_cycle_ = cycle_;
  last_progress_in_flight_ = in_flight;
  config_.trace->emit("sim.progress",
                      obs::Json::object()
                          .set("cycle", cycle_)
                          .set("phase", phase_name(cycle_))
                          .set("packets_created",
                               static_cast<long>(packets_.size()))
                          .set("packets_in_flight", in_flight)
                          .set("outstanding_measured", outstanding_measured_)
                          .set("ejection_rate", ejection_rate));
}

void Simulator::record_series() {
  obs::SeriesRecorder& rec = *config_.series;
  const double x = static_cast<double>(cycle_);
  rec.append("sim.injected_flits", x,
             static_cast<double>(injected_flits_total_ - window_injected_));
  rec.append("sim.ejected_flits", x,
             static_cast<double>(ejected_flits_total_ - window_ejected_));
  rec.append("sim.in_network_flits", x,
             static_cast<double>(in_network_flits_));

  // Occupancy scan is O(routers x ports x vcs) but runs only once per
  // series window, never per cycle.
  long active_routers = 0;
  long occupied_vcs = 0;
  long total_vcs = 0;
  for (const RouterState& rs : routers_) {
    bool active = false;
    for (const auto& port : rs.in) {
      for (const InVc& vc : port) {
        ++total_vcs;
        if (!vc.buffer.empty()) {
          active = true;
          ++occupied_vcs;
        }
      }
    }
    if (active) ++active_routers;
  }
  rec.append("sim.active_routers", x, static_cast<double>(active_routers));
  rec.append("sim.vc_occupancy", x,
             total_vcs > 0 ? static_cast<double>(occupied_vcs) /
                                 static_cast<double>(total_vcs)
                           : 0.0);

  // Fraction of flit-cycles in the window that did not advance: a flit
  // sitting in the network for a cycle either won a switch grant or
  // stalled (pipeline latency counts as stall here, so zero-load runs
  // report the pipeline floor, not 0).
  const long grants = grants_total_ - window_grants_;
  const double stalled =
      window_flit_cycles_ > 0
          ? 1.0 - static_cast<double>(grants) /
                      static_cast<double>(window_flit_cycles_)
          : 0.0;
  rec.append("sim.stall_fraction", x, std::clamp(stalled, 0.0, 1.0));

  window_injected_ = injected_flits_total_;
  window_ejected_ = ejected_flits_total_;
  window_grants_ = grants_total_;
  window_flit_cycles_ = 0;
}

void Simulator::emit_channel_heatmap(const SimStats& stats) const {
  obs::Json channels = obs::Json::array();
  const double cycles = std::max<double>(
      1.0, static_cast<double>(stats.activity.measured_cycles));
  for (std::size_t ch = 0; ch < stats.channel_flits.size(); ++ch) {
    const auto& channel = net_.channels()[ch];
    channels.push(
        obs::Json::object()
            .set("src", channel.src_router)
            .set("dst", channel.dst_router)
            .set("length", channel.length)
            .set("flits", stats.channel_flits[ch])
            .set("utilization",
                 static_cast<double>(stats.channel_flits[ch]) / cycles));
  }
  config_.trace->emit("sim.channel_utilization",
                      obs::Json::object()
                          .set("measured_cycles",
                               stats.activity.measured_cycles)
                          .set("flit_bits", net_.flit_bits())
                          .set("width", net_.width())
                          .set("height", net_.height())
                          .set("channels", std::move(channels)));
}

SimStats Simulator::finalize() const {
  SimStats stats;
  stats.activity = activity_;
  stats.channel_flits = channel_flits_measured_;
  stats.last_ejection_cycle = last_ejection_cycle_;
  stats.last_progress_cycle = last_progress_cycle_;
  stats.last_progress_in_flight = last_progress_in_flight_;
  stats.reroutes = reroutes_;
  stats.packets_dropped = packets_dropped_;
  stats.packets_retransmitted = packets_retransmitted_;
  stats.packets_lost = packets_lost_;
  stats.packets_unroutable = packets_unroutable_;

  const long measure_start = config_.warmup_cycles;
  const long measure_end = measure_start + config_.measure_cycles;
  const int nodes = net_.node_count();

  double latency_sum = 0.0;
  double head_latency_sum = 0.0;
  long hops_sum = 0;
  std::vector<double> latencies;
  for (const Packet& pk : packets_) {
    if (pk.superseded) continue;  // its retransmitted copy carries the stats
    if (pk.ejected >= measure_start && pk.ejected < measure_end)
      ++stats.packets_ejected_in_window;
    if (!pk.measured) continue;
    ++stats.packets_offered;
    if (pk.ejected < 0) continue;
    ++stats.packets_finished;
    const auto total = static_cast<double>(pk.ejected - pk.created);
    latency_sum += total;
    head_latency_sum += static_cast<double>(pk.head_ejected - pk.created);
    hops_sum += pk.hops;
    latencies.push_back(total);
    stats.max_latency = std::max(stats.max_latency, total);
  }
  if (stats.packets_finished > 0) {
    stats.avg_latency = latency_sum / stats.packets_finished;
    stats.avg_head_latency = head_latency_sum / stats.packets_finished;
    stats.avg_hops =
        static_cast<double>(hops_sum) / stats.packets_finished;

    double sq = 0.0;
    for (const double x : latencies) {
      const double d = x - stats.avg_latency;
      sq += d * d;
    }
    stats.stddev_latency = std::sqrt(sq / latencies.size());

    // Percentiles through the shared log-bucketed histogram. Latencies are
    // integral cycle counts, so sizing the exact (unit-bucket) range to
    // cover the observed max reproduces the historical sort-based
    // sorted[floor(p * (n - 1))] values byte-for-byte — the histogram's
    // nearest-rank rule is the same formula. (Beyond 2^22 cycles the
    // exact range caps out and quantiles become log-bucketed; no
    // simulation this code runs gets near that.)
    int hist_bits = 1;
    while (hist_bits < 22 &&
           static_cast<double>(1L << hist_bits) <= stats.max_latency)
      ++hist_bits;
    obs::Histogram latency_hist(hist_bits);
    for (const double x : latencies) latency_hist.record(static_cast<long>(x));
    stats.p50_latency =
        static_cast<double>(latency_hist.value_at_quantile(0.50));
    stats.p95_latency =
        static_cast<double>(latency_hist.value_at_quantile(0.95));
    stats.p99_latency =
        static_cast<double>(latency_hist.value_at_quantile(0.99));

    // Batch means over the measurement window for a confidence interval
    // (consecutive batches damp the autocorrelation of queueing systems).
    constexpr int kBatches = 10;
    // activity_.measured_cycles == config_.measure_cycles on a completed
    // run; it is the (shorter) elapsed window when the run was stopped.
    const long batch_span =
        std::max<long>(1, activity_.measured_cycles / kBatches);
    double batch_sum[kBatches] = {};
    long batch_count[kBatches] = {};
    for (const Packet& pk : packets_) {
      if (!pk.measured || pk.ejected < 0) continue;
      const long idx64 = (pk.created - measure_start) / batch_span;
      const int b = static_cast<int>(std::min<long>(idx64, kBatches - 1));
      batch_sum[b] += static_cast<double>(pk.ejected - pk.created);
      ++batch_count[b];
    }
    double means[kBatches];
    int k = 0;
    for (int b = 0; b < kBatches; ++b)
      if (batch_count[b] > 0) means[k++] = batch_sum[b] / batch_count[b];
    if (k >= 2) {
      double mean_of_means = 0.0;
      for (int b = 0; b < k; ++b) mean_of_means += means[b];
      mean_of_means /= k;
      double var = 0.0;
      for (int b = 0; b < k; ++b) {
        const double d = means[b] - mean_of_means;
        var += d * d;
      }
      var /= (k - 1);
      // t-quantile for small k; 2.262 is t(0.975, 9), a good constant for
      // ~10 batches.
      stats.ci95_latency = 2.262 * std::sqrt(var / k);
    }
  }
  stats.drained = stats.packets_finished == stats.packets_offered;

  const double node_cycles =
      static_cast<double>(activity_.measured_cycles) * nodes;
  stats.throughput_packets_per_node_cycle =
      static_cast<double>(stats.packets_ejected_in_window) / node_cycles;
  stats.offered_packets_per_node_cycle =
      static_cast<double>(stats.packets_offered) / node_cycles;
  if (grants_measured_ > 0)
    stats.avg_contention_per_hop =
        static_cast<double>(contention_cycles_) / grants_measured_;
  return stats;
}

}  // namespace xlp::sim
