#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/numeric.hpp"

namespace xlp::sim {

Simulator::Simulator(const Network& network,
                     const traffic::TrafficMatrix& demand,
                     const SimConfig& config)
    : net_(network), config_(config), rng_(config.seed) {
  XLP_REQUIRE(demand.width() == net_.width() &&
                  demand.height() == net_.height(),
              "traffic matrix dimensions do not match the network");
  XLP_REQUIRE(config_.vcs_per_port >= 1, "need at least one VC per port");
  XLP_REQUIRE(config_.routing != RoutingMode::kO1Turn ||
                  config_.vcs_per_port >= 2,
              "O1TURN needs at least two VCs per port (one per "
              "orientation class)");
  XLP_REQUIRE(config_.pipeline_stages >= 1, "pipeline needs >= 1 stage");

  const int nodes = net_.node_count();
  const int vcs = config_.vcs_per_port;

  routers_.resize(static_cast<std::size_t>(nodes));
  input_port_used_.resize(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) {
    auto& router = routers_[static_cast<std::size_t>(r)];
    const int ports = net_.port_count(r);
    router.vc_depth = config_.vc_depth_flits(ports, net_.flit_bits());
    router.in.assign(static_cast<std::size_t>(ports),
                     std::vector<InVc>(static_cast<std::size_t>(vcs)));
    router.credits.assign(static_cast<std::size_t>(ports),
                          std::vector<int>(static_cast<std::size_t>(vcs), 0));
    router.rr.assign(static_cast<std::size_t>(ports), 0);
    input_port_used_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(ports), 0);
  }
  // Output credits reflect the *downstream* router's buffer depth.
  for (int r = 0; r < nodes; ++r) {
    auto& router = routers_[static_cast<std::size_t>(r)];
    for (int p = 1; p < net_.port_count(r); ++p) {
      const int peer = net_.port(r, p).peer_router;
      const int depth = routers_[static_cast<std::size_t>(peer)].vc_depth;
      for (int v = 0; v < vcs; ++v)
        router.credits[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(v)] = depth;
    }
  }
  ni_credits_.resize(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node)
    ni_credits_[static_cast<std::size_t>(node)].assign(
        static_cast<std::size_t>(vcs),
        routers_[static_cast<std::size_t>(node)].vc_depth);

  channel_flits_.resize(net_.channels().size());
  channel_credits_.resize(net_.channels().size());
  channel_flits_measured_.assign(net_.channels().size(), 0);

  // Per-node destination distributions.
  nodes_.resize(static_cast<std::size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    auto& st = nodes_[static_cast<std::size_t>(node)];
    st.rate = demand.node_rate(node);
    XLP_REQUIRE(st.rate <= 1.0,
                "per-node injection above one packet per cycle is not "
                "representable by Bernoulli injection");
    if (st.rate <= 0.0) continue;
    double cum = 0.0;
    for (int dst = 0; dst < nodes; ++dst) {
      const double r = demand.rate(node, dst);
      if (r <= 0.0) continue;
      cum += r / st.rate;
      st.dest_cdf.push_back(cum);
      st.dest_node.push_back(dst);
    }
    XLP_CHECK(!st.dest_cdf.empty(), "positive rate needs destinations");
    st.dest_cdf.back() = 1.0;  // guard against rounding
  }

  // Packet-size mix CDF.
  double cum = 0.0;
  for (const auto& pc : config_.mix.classes()) {
    cum += pc.fraction;
    mix_cdf_.push_back(cum);
    mix_bits_.push_back(pc.bits);
  }
  mix_cdf_.back() = 1.0;

  activity_.flit_bits = net_.flit_bits();
}

int Simulator::pick_packet_bits() {
  const double u = rng_.uniform01();
  for (std::size_t k = 0; k < mix_cdf_.size(); ++k)
    if (u <= mix_cdf_[k]) return mix_bits_[k];
  return mix_bits_.back();
}

std::pair<int, int> Simulator::vc_class(bool y_first) const {
  if (config_.routing != RoutingMode::kO1Turn)
    return {0, config_.vcs_per_port};
  const int half = config_.vcs_per_port / 2;
  return y_first ? std::pair{half, config_.vcs_per_port}
                 : std::pair{0, half};
}

long Simulator::create_packet(int src, int dst, int bits) {
  Packet pk;
  pk.id = static_cast<long>(packets_.size());
  pk.src = src;
  pk.dst = dst;
  pk.bits = bits;
  pk.flits = latency::PacketMix::flits_for(bits, net_.flit_bits());
  pk.created = cycle_;
  pk.measured = in_measurement_window();
  if (pk.measured) ++outstanding_measured_;
  packets_.push_back(pk);

  bool y_first = false;
  switch (config_.routing) {
    case RoutingMode::kXY: y_first = false; break;
    case RoutingMode::kYX: y_first = true; break;
    case RoutingMode::kO1Turn: y_first = rng_.bernoulli(0.5); break;
  }

  auto& queue = nodes_[static_cast<std::size_t>(src)].source_queue;
  for (int s = 0; s < pk.flits; ++s) {
    Flit f;
    f.packet = pk.id;
    f.seq = s;
    f.is_head = s == 0;
    f.is_tail = s == pk.flits - 1;
    f.dst = dst;
    f.y_first = y_first;
    queue.push_back(f);
  }
  return pk.id;
}

void Simulator::schedule_packet(int src, int dst, int bits,
                                long create_cycle) {
  XLP_REQUIRE(src >= 0 && src < net_.node_count() && dst >= 0 &&
                  dst < net_.node_count() && src != dst,
              "bad trace packet endpoints");
  XLP_REQUIRE(cycle_ == 0, "schedule_packet must be called before run()");
  scheduled_.emplace_back(create_cycle, src, dst, bits);
}

long Simulator::packet_latency(long packet_id) const {
  XLP_REQUIRE(packet_id >= 0 &&
                  packet_id < static_cast<long>(packets_.size()),
              "unknown packet id");
  const Packet& pk = packets_[static_cast<std::size_t>(packet_id)];
  return pk.ejected < 0 ? -1 : pk.ejected - pk.created;
}

void Simulator::generate_traffic(int node) {
  auto& st = nodes_[static_cast<std::size_t>(node)];
  if (st.rate <= 0.0 || !rng_.bernoulli(st.rate)) return;

  const double u = rng_.uniform01();
  const auto it = std::lower_bound(st.dest_cdf.begin(), st.dest_cdf.end(), u);
  const int dst =
      st.dest_node[static_cast<std::size_t>(it - st.dest_cdf.begin())];
  create_packet(node, dst, pick_packet_bits());
}

void Simulator::inject(int node) {
  auto& st = nodes_[static_cast<std::size_t>(node)];
  if (st.source_queue.empty()) return;
  Flit& f = st.source_queue.front();

  if (f.is_head && st.active_vc < 0) {
    // NI-side VC allocation on the router's local input port, restricted
    // to the packet's orientation class.
    auto& port0 = routers_[static_cast<std::size_t>(node)].in[0];
    const auto [vc_lo, vc_hi] = vc_class(f.y_first);
    for (int v = vc_lo; v < vc_hi; ++v) {
      if (!port0[static_cast<std::size_t>(v)].owned) {
        port0[static_cast<std::size_t>(v)].owned = true;
        st.active_vc = v;
        break;
      }
    }
    if (st.active_vc < 0) return;  // all local VCs of this class busy
  }
  if (st.active_vc < 0) return;
  auto& credit =
      ni_credits_[static_cast<std::size_t>(node)]
                 [static_cast<std::size_t>(st.active_vc)];
  if (credit <= 0) return;

  Flit sent = f;
  sent.vc = st.active_vc;
  st.source_queue.pop_front();
  --credit;

  // NI-to-router wiring is length 0: the flit is written into the router's
  // local input buffer next cycle (the arrival handler stamps ready_cycle).
  ni_arrivals_.push_back({cycle_ + 1, node, sent});

  if (sent.is_head) packets_[sent.packet].injected = cycle_ + 1;
  if (sent.is_tail) st.active_vc = -1;
}

void Simulator::deliver_channel_arrivals() {
  // NI arrivals.
  while (!ni_arrivals_.empty() &&
         std::get<0>(ni_arrivals_.front()) <= cycle_) {
    auto [when, node, f] = ni_arrivals_.front();
    ni_arrivals_.pop_front();
    XLP_CHECK(when == cycle_, "missed an NI arrival");
    f.ready_cycle = cycle_ + (config_.pipeline_stages - 1);
    auto& vc = routers_[static_cast<std::size_t>(node)]
                   .in[0][static_cast<std::size_t>(f.vc)];
    XLP_CHECK(static_cast<int>(vc.buffer.size()) <
                  routers_[static_cast<std::size_t>(node)].vc_depth,
              "credit protocol violated: NI overflow");
    vc.buffer.push_back(f);
    if (in_measurement_window()) ++activity_.buffer_writes;
  }
  // Channel arrivals.
  for (std::size_t ch = 0; ch < channel_flits_.size(); ++ch) {
    auto& queue = channel_flits_[ch];
    while (!queue.empty() && queue.front().first <= cycle_) {
      Flit f = queue.front().second;
      queue.pop_front();
      const auto& channel = net_.channels()[ch];
      f.ready_cycle = cycle_ + (config_.pipeline_stages - 1);
      auto& vc = routers_[static_cast<std::size_t>(channel.dst_router)]
                     .in[static_cast<std::size_t>(channel.dst_port)]
                     [static_cast<std::size_t>(f.vc)];
      XLP_CHECK(
          static_cast<int>(vc.buffer.size()) <
              routers_[static_cast<std::size_t>(channel.dst_router)].vc_depth,
          "credit protocol violated: input buffer overflow");
      vc.buffer.push_back(f);
      if (in_measurement_window()) ++activity_.buffer_writes;
    }
  }
}

void Simulator::deliver_credits() {
  for (std::size_t ch = 0; ch < channel_credits_.size(); ++ch) {
    auto& queue = channel_credits_[ch];
    while (!queue.empty() && queue.front().first <= cycle_) {
      const int vc = queue.front().second;
      queue.pop_front();
      const auto& channel = net_.channels()[ch];
      ++routers_[static_cast<std::size_t>(channel.src_router)]
            .credits[static_cast<std::size_t>(channel.src_port)]
                    [static_cast<std::size_t>(vc)];
    }
  }
  while (!ni_credit_returns_.empty() &&
         std::get<0>(ni_credit_returns_.front()) <= cycle_) {
    auto [when, node, vc] = ni_credit_returns_.front();
    ni_credit_returns_.pop_front();
    ++ni_credits_[static_cast<std::size_t>(node)]
                 [static_cast<std::size_t>(vc)];
  }
}

void Simulator::allocate(int router) {
  auto& rs = routers_[static_cast<std::size_t>(router)];
  const int ports = net_.port_count(router);
  for (int p = 0; p < ports; ++p) {
    for (int v = 0; v < config_.vcs_per_port; ++v) {
      InVc& q = rs.in[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
      if (q.active || q.buffer.empty() || !q.buffer.front().is_head) continue;
      const Flit& head = q.buffer.front();
      // Route computation.
      const int out_port = net_.next_output_port(
          router, head.dst,
          head.y_first ? route::Orientation::kYXFirst
                       : route::Orientation::kXYFirst);
      if (out_port == 0) {  // ejection needs no downstream VC
        q.out_port = 0;
        q.out_vc = 0;
        q.active = true;
        continue;
      }
      // VC allocation on the downstream input port, within the packet's
      // orientation class.
      const auto& port = net_.port(router, out_port);
      auto& peer_vcs = routers_[static_cast<std::size_t>(port.peer_router)]
                           .in[static_cast<std::size_t>(port.peer_port)];
      const auto [vc_lo, vc_hi] = vc_class(head.y_first);
      for (int u = vc_lo; u < vc_hi; ++u) {
        if (!peer_vcs[static_cast<std::size_t>(u)].owned) {
          peer_vcs[static_cast<std::size_t>(u)].owned = true;
          q.out_port = out_port;
          q.out_vc = u;
          q.active = true;
          // Virtual-express bypass: a straight-through packet (arrived via a
          // neighbor port and continues in the same dimension and
          // direction) skips the front pipeline stages at this router.
          if (config_.virtual_express_bypass && p != 0) {
            const auto& in_port = net_.port(router, p);
            q.bypass = port.dx == -in_port.dx && port.dy == -in_port.dy;
          }
          break;
        }
      }
    }
  }
}

void Simulator::arbitrate(int router) {
  auto& rs = routers_[static_cast<std::size_t>(router)];
  const int ports = net_.port_count(router);
  const int vcs = config_.vcs_per_port;
  auto& used = input_port_used_[static_cast<std::size_t>(router)];
  std::fill(used.begin(), used.end(), 0);

  const int slots = ports * vcs;
  for (int out = 0; out < ports; ++out) {
    int& rr = rs.rr[static_cast<std::size_t>(out)];

    // Select a winner: first eligible after the round-robin pointer, or the
    // eligible flit with the oldest packet under age-based arbitration.
    int chosen = -1;
    long chosen_age = std::numeric_limits<long>::max();
    long chosen_ready = 0;
    for (int offset = 1; offset <= slots; ++offset) {
      const int idx = (rr + offset) % slots;
      const int p = idx / vcs;
      const int v = idx % vcs;
      if (used[static_cast<std::size_t>(p)]) continue;
      InVc& q =
          rs.in[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
      if (!q.active || q.out_port != out || q.buffer.empty()) continue;
      const Flit& front = q.buffer.front();
      const long effective_ready =
          q.bypass ? front.ready_cycle - (config_.pipeline_stages - 1)
                   : front.ready_cycle;
      if (effective_ready > cycle_) continue;
      if (out != 0 &&
          rs.credits[static_cast<std::size_t>(out)]
                    [static_cast<std::size_t>(q.out_vc)] <= 0)
        continue;
      if (config_.arbiter == Arbiter::kRoundRobin) {
        chosen = idx;
        chosen_ready = effective_ready;
        break;
      }
      const long age =
          packets_[static_cast<std::size_t>(front.packet)].created;
      if (age < chosen_age) {
        chosen_age = age;
        chosen = idx;
        chosen_ready = effective_ready;
      }
    }
    if (chosen < 0) continue;
    {
      const int idx = chosen;
      const int p = idx / vcs;
      const int v = idx % vcs;
      InVc& q =
          rs.in[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
      const long effective_ready = chosen_ready;

      // Grant: switch traversal this cycle, link traversal next.
      Flit f = q.buffer.front();
      q.buffer.pop_front();
      used[static_cast<std::size_t>(p)] = 1;
      rr = idx;

      const bool window = in_measurement_window();
      if (window) {
        ++activity_.buffer_reads;
        ++activity_.crossbar_traversals;
        contention_cycles_ += cycle_ - effective_ready;
        ++grants_measured_;
      }

      // Return the freed buffer slot upstream.
      if (p == 0) {
        ni_credit_returns_.push_back({cycle_ + 1, router, v});
      } else {
        const int in_ch = net_.port(router, p).in_channel;
        channel_credits_[static_cast<std::size_t>(in_ch)].push_back(
            {cycle_ + 1, v});
      }

      if (out == 0) {
        Packet& pk = packets_[f.packet];
        if (f.is_head) pk.head_ejected = cycle_ + 1;
        if (f.is_tail) {
          pk.ejected = cycle_ + 1;
          ++ejected_total_;
          if (pk.measured) --outstanding_measured_;
        }
      } else {
        const auto& port = net_.port(router, out);
        f.vc = q.out_vc;
        if (f.is_head) ++packets_[f.packet].hops;
        channel_flits_[static_cast<std::size_t>(port.out_channel)].push_back(
            {cycle_ + 1 + port.length, f});
        --rs.credits[static_cast<std::size_t>(out)]
                    [static_cast<std::size_t>(q.out_vc)];
        if (window) {
          activity_.link_flit_units += port.length;
          ++channel_flits_measured_[static_cast<std::size_t>(
              port.out_channel)];
        }
      }

      if (f.is_tail) {
        q.active = false;
        q.owned = false;
        q.bypass = false;
        q.out_port = -1;
        q.out_vc = -1;
      }
    }
  }
}

SimStats Simulator::run() {
  const long measure_end = config_.warmup_cycles + config_.measure_cycles;
  const long hard_end = measure_end + config_.drain_cycles;
  const int nodes = net_.node_count();
  const bool tracing = config_.trace != nullptr && config_.trace->enabled() &&
                       config_.trace_interval_cycles > 0;

  std::sort(scheduled_.begin(), scheduled_.end());
  for (cycle_ = 0; cycle_ < hard_end; ++cycle_) {
    if (cycle_ >= measure_end && outstanding_measured_ == 0 &&
        next_scheduled_ >= scheduled_.size())
      break;
    if (tracing && cycle_ > 0 && cycle_ % config_.trace_interval_cycles == 0)
      emit_progress();
    deliver_channel_arrivals();
    deliver_credits();
    while (next_scheduled_ < scheduled_.size() &&
           std::get<0>(scheduled_[next_scheduled_]) <= cycle_) {
      const auto [when, src, dst, bits] = scheduled_[next_scheduled_++];
      create_packet(src, dst, bits);
    }
    for (int node = 0; node < nodes; ++node) {
      generate_traffic(node);
      inject(node);
    }
    for (int r = 0; r < nodes; ++r) allocate(r);
    for (int r = 0; r < nodes; ++r) arbitrate(r);
  }
  activity_.measured_cycles = config_.measure_cycles;
  SimStats stats = finalize();
  if (config_.trace != nullptr && config_.trace->enabled()) {
    emit_channel_heatmap(stats);
    config_.trace->emit(
        "sim.done",
        obs::Json::object()
            .set("cycles", cycle_)
            .set("packets_offered", stats.packets_offered)
            .set("packets_finished", stats.packets_finished)
            .set("avg_latency", stats.avg_latency)
            .set("drained", stats.drained));
  }
  return stats;
}

const char* Simulator::phase_name(long cycle) const noexcept {
  if (cycle < config_.warmup_cycles) return "warmup";
  if (cycle < config_.warmup_cycles + config_.measure_cycles)
    return "measure";
  return "drain";
}

void Simulator::emit_progress() {
  const long in_flight = static_cast<long>(packets_.size()) - ejected_total_;
  const long interval = config_.trace_interval_cycles;
  const double ejection_rate =
      static_cast<double>(ejected_total_ - last_snapshot_ejected_) /
      static_cast<double>(interval);
  last_snapshot_ejected_ = ejected_total_;
  config_.trace->emit("sim.progress",
                      obs::Json::object()
                          .set("cycle", cycle_)
                          .set("phase", phase_name(cycle_))
                          .set("packets_created",
                               static_cast<long>(packets_.size()))
                          .set("packets_in_flight", in_flight)
                          .set("outstanding_measured", outstanding_measured_)
                          .set("ejection_rate", ejection_rate));
}

void Simulator::emit_channel_heatmap(const SimStats& stats) const {
  obs::Json channels = obs::Json::array();
  const double cycles =
      std::max<double>(1.0, static_cast<double>(config_.measure_cycles));
  for (std::size_t ch = 0; ch < stats.channel_flits.size(); ++ch) {
    const auto& channel = net_.channels()[ch];
    channels.push(
        obs::Json::object()
            .set("src", channel.src_router)
            .set("dst", channel.dst_router)
            .set("length", channel.length)
            .set("flits", stats.channel_flits[ch])
            .set("utilization",
                 static_cast<double>(stats.channel_flits[ch]) / cycles));
  }
  config_.trace->emit("sim.channel_utilization",
                      obs::Json::object()
                          .set("measured_cycles", config_.measure_cycles)
                          .set("flit_bits", net_.flit_bits())
                          .set("channels", std::move(channels)));
}

SimStats Simulator::finalize() const {
  SimStats stats;
  stats.activity = activity_;
  stats.channel_flits = channel_flits_measured_;

  const long measure_start = config_.warmup_cycles;
  const long measure_end = measure_start + config_.measure_cycles;
  const int nodes = net_.node_count();

  double latency_sum = 0.0;
  double head_latency_sum = 0.0;
  long hops_sum = 0;
  std::vector<double> latencies;
  for (const Packet& pk : packets_) {
    if (pk.ejected >= measure_start && pk.ejected < measure_end)
      ++stats.packets_ejected_in_window;
    if (!pk.measured) continue;
    ++stats.packets_offered;
    if (pk.ejected < 0) continue;
    ++stats.packets_finished;
    const auto total = static_cast<double>(pk.ejected - pk.created);
    latency_sum += total;
    head_latency_sum += static_cast<double>(pk.head_ejected - pk.created);
    hops_sum += pk.hops;
    latencies.push_back(total);
    stats.max_latency = std::max(stats.max_latency, total);
  }
  if (stats.packets_finished > 0) {
    stats.avg_latency = latency_sum / stats.packets_finished;
    stats.avg_head_latency = head_latency_sum / stats.packets_finished;
    stats.avg_hops =
        static_cast<double>(hops_sum) / stats.packets_finished;

    double sq = 0.0;
    for (const double x : latencies) {
      const double d = x - stats.avg_latency;
      sq += d * d;
    }
    stats.stddev_latency = std::sqrt(sq / latencies.size());
    std::sort(latencies.begin(), latencies.end());
    auto percentile = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    stats.p50_latency = percentile(0.50);
    stats.p95_latency = percentile(0.95);
    stats.p99_latency = percentile(0.99);

    // Batch means over the measurement window for a confidence interval
    // (consecutive batches damp the autocorrelation of queueing systems).
    constexpr int kBatches = 10;
    const long batch_span =
        std::max<long>(1, config_.measure_cycles / kBatches);
    double batch_sum[kBatches] = {};
    long batch_count[kBatches] = {};
    for (const Packet& pk : packets_) {
      if (!pk.measured || pk.ejected < 0) continue;
      const long idx64 = (pk.created - measure_start) / batch_span;
      const int b = static_cast<int>(std::min<long>(idx64, kBatches - 1));
      batch_sum[b] += static_cast<double>(pk.ejected - pk.created);
      ++batch_count[b];
    }
    double means[kBatches];
    int k = 0;
    for (int b = 0; b < kBatches; ++b)
      if (batch_count[b] > 0) means[k++] = batch_sum[b] / batch_count[b];
    if (k >= 2) {
      double mean_of_means = 0.0;
      for (int b = 0; b < k; ++b) mean_of_means += means[b];
      mean_of_means /= k;
      double var = 0.0;
      for (int b = 0; b < k; ++b) {
        const double d = means[b] - mean_of_means;
        var += d * d;
      }
      var /= (k - 1);
      // t-quantile for small k; 2.262 is t(0.975, 9), a good constant for
      // ~10 batches.
      stats.ci95_latency = 2.262 * std::sqrt(var / k);
    }
  }
  stats.drained = stats.packets_finished == stats.packets_offered;

  const double node_cycles =
      static_cast<double>(config_.measure_cycles) * nodes;
  stats.throughput_packets_per_node_cycle =
      static_cast<double>(stats.packets_ejected_in_window) / node_cycles;
  stats.offered_packets_per_node_cycle =
      static_cast<double>(stats.packets_offered) / node_cycles;
  if (grants_measured_ > 0)
    stats.avg_contention_per_hop =
        static_cast<double>(contention_cycles_) / grants_measured_;
  return stats;
}

}  // namespace xlp::sim
