#pragma once

#include <string>

#include "obs/json.hpp"
#include "sim/stats.hpp"

namespace xlp::sim {

/// Full machine-readable serialization of a run's statistics: every scalar
/// of SimStats (latency percentiles, CI95, throughput, contention),
/// the ActivityCounters block, and the per-channel flit counts — the data
/// behind Section 5.4's bandwidth-utilization analysis.
[[nodiscard]] obs::Json stats_to_json(const SimStats& stats);

/// Writes stats_to_json() to a file; returns false (without throwing) when
/// the file cannot be opened.
[[nodiscard]] bool write_stats_json(const SimStats& stats,
                                    const std::string& path);

}  // namespace xlp::sim
