#pragma once

#include <vector>

#include "route/mesh_routing.hpp"
#include "topo/express_mesh.hpp"

namespace xlp::sim {

/// Structural model of the network: routers with numbered ports and the
/// directed channels between them. Port 0 of every router is the network
/// interface (injection/ejection); ports 1.. connect to row neighbors
/// (sorted by position) then column neighbors. Parallel duplicate links
/// between the same pair collapse onto one channel (duplicates can arise in
/// the connection-matrix space; they add unusable capacity, Section 5.4).
class Network {
 public:
  struct Port {
    int peer_router = -1;  // -1 for the NI port
    int peer_port = -1;
    int length = 0;        // wire units; NI "links" have length 0
    int in_channel = -1;   // channel delivering flits into this port
    int out_channel = -1;  // channel this port drives (-1 for NI ports)
    // Unit direction from this router toward the peer (one of dx/dy is
    // non-zero for neighbor ports; both zero for the NI port). Used by the
    // virtual-express bypass to detect straight-through traversal.
    int dx = 0;
    int dy = 0;
  };

  struct Channel {
    int src_router = -1;
    int src_port = -1;
    int dst_router = -1;
    int dst_port = -1;
    int length = 1;
  };

  Network(const topo::ExpressMesh& mesh, route::HopWeights weights);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  /// Routers per side; only valid for square networks (throws otherwise).
  [[nodiscard]] int side() const;
  [[nodiscard]] int node_count() const noexcept { return width_ * height_; }
  [[nodiscard]] int flit_bits() const noexcept { return flit_bits_; }

  [[nodiscard]] int port_count(int router) const;
  [[nodiscard]] const Port& port(int router, int p) const;
  [[nodiscard]] const std::vector<Channel>& channels() const noexcept {
    return channels_;
  }

  /// Port of `router` facing neighbor `peer`; -1 when they are not adjacent.
  [[nodiscard]] int port_to(int router, int peer) const;

  /// Output port a packet at `router` heading for node `dst` must take
  /// under the given dimension order; port 0 (ejection) when router == dst.
  [[nodiscard]] int next_output_port(
      int router, int dst,
      route::Orientation orientation = route::Orientation::kXYFirst) const;

  [[nodiscard]] const route::MeshRouting& routing() const noexcept {
    return routing_;
  }

  /// The design this network was built from; the fault subsystem reroutes
  /// against it when links die mid-run.
  [[nodiscard]] const topo::ExpressMesh& mesh() const noexcept {
    return mesh_;
  }
  [[nodiscard]] const route::HopWeights& hop_weights() const noexcept {
    return weights_;
  }

 private:
  int width_;
  int height_;
  int flit_bits_;
  topo::ExpressMesh mesh_;
  route::HopWeights weights_;
  route::MeshRouting routing_;
  std::vector<std::vector<Port>> ports_;          // [router][port]
  std::vector<std::vector<int>> port_of_peer_;    // [router][peer] -> port
  std::vector<Channel> channels_;
};

}  // namespace xlp::sim
