#pragma once

#include <deque>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sim/network.hpp"
#include "sim/packet.hpp"
#include "sim/stats.hpp"
#include "traffic/matrix.hpp"
#include "util/rng.hpp"

namespace xlp::sim {

/// Flit-level, cycle-based wormhole NoC simulator — the stand-in for
/// gem5+GARNET (see DESIGN.md "Substitutions").
///
/// Model summary:
///  * canonical 3-stage routers: buffer write at cycle t, route compute /
///    VC allocation, switch allocation from t+2; a granted flit reaches the
///    next router at grant + 1 + link_length (pipelined repeated wires,
///    1 flit/cycle bandwidth regardless of length);
///  * per-port virtual channels with credit-based flow control; the total
///    buffer bits per router are equal across topologies (Section 4.6), so
///    narrow-flit designs get proportionally deeper VCs;
///  * table-driven deadlock-free DOR routing from route::MeshRouting — the
///    simulator routes exactly what the optimizer optimized;
///  * Bernoulli injection per node from a TrafficMatrix, packet sizes drawn
///    from the configured PacketMix.
///
/// At zero load the end-to-end latency reproduces the analytic model
/// exactly: (hops+1)*3 + distance + flits, measured creation -> tail eject.
class Simulator {
 public:
  Simulator(const Network& network, const traffic::TrafficMatrix& demand,
            const SimConfig& config);

  /// Runs warmup + measurement + drain and returns the statistics.
  [[nodiscard]] SimStats run();

  /// Trace-driven injection: queues one packet for creation at the given
  /// cycle, in addition to any stochastic matrix traffic. Must be called
  /// before run(). Useful for replaying traces and for exact zero-load
  /// latency measurements.
  void schedule_packet(int src, int dst, int bits, long create_cycle);

  /// Latency (creation to tail ejection) of the packet with the given id,
  /// valid after run(); -1 if it never drained.
  [[nodiscard]] long packet_latency(long packet_id) const;

 private:
  struct InVc {
    std::deque<Flit> buffer;
    bool owned = false;   // reserved by an upstream (or NI) packet
    bool active = false;  // route + output VC assigned
    bool bypass = false;  // straight-through virtual-express traversal
    int out_port = -1;
    int out_vc = -1;
  };

  struct RouterState {
    std::vector<std::vector<InVc>> in;        // [port][vc]
    std::vector<std::vector<int>> credits;    // [port][vc] for downstream
    std::vector<int> rr;                      // per-output round-robin ptr
    int vc_depth = 2;
  };

  struct NodeState {
    std::deque<Flit> source_queue;  // flits of queued packets, in order
    int active_vc = -1;             // port-0 VC owned by the packet being sent
    double rate = 0.0;              // packets/cycle offered by this node
    std::vector<double> dest_cdf;   // cumulative over destinations
    std::vector<int> dest_node;
  };

  long create_packet(int src, int dst, int bits);
  void generate_traffic(int node);
  /// VC index range [lo, hi) available to a packet with the given
  /// orientation: the full range under pure DOR, a half under O1TURN.
  [[nodiscard]] std::pair<int, int> vc_class(bool y_first) const;
  void inject(int node);
  void allocate(int router);
  void arbitrate(int router);
  void deliver_channel_arrivals();
  void deliver_credits();
  [[nodiscard]] bool in_measurement_window() const noexcept {
    return cycle_ >= config_.warmup_cycles &&
           cycle_ < config_.warmup_cycles + config_.measure_cycles;
  }
  [[nodiscard]] int pick_packet_bits();
  [[nodiscard]] SimStats finalize() const;
  /// Name of the run phase the given cycle falls into.
  [[nodiscard]] const char* phase_name(long cycle) const noexcept;
  /// Emits one `sim.progress` trace snapshot for the current cycle.
  void emit_progress();
  /// Emits the `sim.channel_utilization` heatmap for a finished run.
  void emit_channel_heatmap(const SimStats& stats) const;

  const Network& net_;
  SimConfig config_;
  Rng rng_;

  long cycle_ = 0;
  std::vector<Packet> packets_;
  std::vector<RouterState> routers_;
  std::vector<NodeState> nodes_;
  std::vector<std::vector<int>> ni_credits_;  // [node][vc] for port-0 VCs

  // Per-channel in-flight flits (arrival cycle is monotone per channel).
  std::vector<std::deque<std::pair<long, Flit>>> channel_flits_;
  // Per-channel pending credit returns: (cycle, vc).
  std::vector<std::deque<std::pair<long, int>>> channel_credits_;
  // Pending NI credit returns: (cycle, node, vc).
  std::deque<std::tuple<long, int, int>> ni_credit_returns_;
  // Flits in flight from an NI into its router: (arrival cycle, node, flit).
  std::deque<std::tuple<long, int, Flit>> ni_arrivals_;
  // Measured packets created but not yet fully ejected.
  long outstanding_measured_ = 0;
  // Lifetime ejection counters, for the progress telemetry.
  long ejected_total_ = 0;
  long last_snapshot_ejected_ = 0;
  // Trace-driven injections: (create cycle, src, dst, bits), kept sorted.
  std::vector<std::tuple<long, int, int, int>> scheduled_;
  std::size_t next_scheduled_ = 0;

  // Scratch: one grant per input port per cycle.
  std::vector<std::vector<char>> input_port_used_;

  // Measurement accumulators.
  long contention_cycles_ = 0;
  long grants_measured_ = 0;
  ActivityCounters activity_;
  std::vector<long> channel_flits_measured_;
  std::vector<double> mix_cdf_;
  std::vector<int> mix_bits_;
};

}  // namespace xlp::sim
