#pragma once

#include <deque>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "fault/model.hpp"
#include "route/mesh_routing.hpp"

#include "sim/config.hpp"
#include "sim/network.hpp"
#include "sim/packet.hpp"
#include "sim/stats.hpp"
#include "traffic/matrix.hpp"
#include "util/rng.hpp"

namespace xlp::sim {

/// Flit-level, cycle-based wormhole NoC simulator — the stand-in for
/// gem5+GARNET (see DESIGN.md "Substitutions").
///
/// Model summary:
///  * canonical 3-stage routers: buffer write at cycle t, route compute /
///    VC allocation, switch allocation from t+2; a granted flit reaches the
///    next router at grant + 1 + link_length (pipelined repeated wires,
///    1 flit/cycle bandwidth regardless of length);
///  * per-port virtual channels with credit-based flow control; the total
///    buffer bits per router are equal across topologies (Section 4.6), so
///    narrow-flit designs get proportionally deeper VCs;
///  * table-driven deadlock-free DOR routing from route::MeshRouting — the
///    simulator routes exactly what the optimizer optimized;
///  * Bernoulli injection per node from a TrafficMatrix, packet sizes drawn
///    from the configured PacketMix.
///
/// At zero load the end-to-end latency reproduces the analytic model
/// exactly: (hops+1)*3 + distance + flits, measured creation -> tail eject.
class Simulator {
 public:
  Simulator(const Network& network, const traffic::TrafficMatrix& demand,
            const SimConfig& config);

  /// Runs warmup + measurement + drain and returns the statistics.
  [[nodiscard]] SimStats run();

  /// Trace-driven injection: queues one packet for creation at the given
  /// cycle, in addition to any stochastic matrix traffic. Must be called
  /// before run(). Useful for replaying traces and for exact zero-load
  /// latency measurements.
  void schedule_packet(int src, int dst, int bits, long create_cycle);

  /// Latency (creation to tail ejection) of the packet with the given id,
  /// valid after run(); -1 if it never drained.
  [[nodiscard]] long packet_latency(long packet_id) const;

 private:
  struct InVc {
    std::deque<Flit> buffer;
    bool owned = false;   // reserved by an upstream (or NI) packet
    bool active = false;  // route + output VC assigned
    bool bypass = false;  // straight-through virtual-express traversal
    int out_port = -1;
    int out_vc = -1;
    long owner = -1;      // packet holding the reservation (fault purge
                          // must release owned-but-empty VCs)
  };

  struct RouterState {
    std::vector<std::vector<InVc>> in;        // [port][vc]
    std::vector<std::vector<int>> credits;    // [port][vc] for downstream
    std::vector<int> rr;                      // per-output round-robin ptr
    int vc_depth = 2;
  };

  struct NodeState {
    std::deque<Flit> source_queue;  // flits of queued packets, in order
    int active_vc = -1;             // port-0 VC owned by the packet being sent
    long active_packet = -1;        // the packet mid-injection on active_vc
    double rate = 0.0;              // packets/cycle offered by this node
    std::vector<double> dest_cdf;   // cumulative over destinations
    std::vector<int> dest_node;
  };

  long create_packet(int src, int dst, int bits);
  void generate_traffic(int node);
  /// Routing table new packets will travel under: the pending rerouted
  /// tables while a drain-then-swap is in progress, the live ones otherwise.
  [[nodiscard]] const route::MeshRouting& admission_routing() const noexcept {
    return pending_routing_ ? *pending_routing_ : *routing_;
  }
  /// Picks a routing orientation for a src->dst packet per the configured
  /// mode; with the fault system engaged, restricted to orientations that
  /// still reach dst. Returns false when no surviving orientation exists.
  [[nodiscard]] bool choose_orientation(const route::MeshRouting& routing,
                                        int src, int dst, bool* y_first);
  /// Output port at `router` toward `dst` under the live routing tables.
  [[nodiscard]] int output_port(int router, int dst, bool y_first) const;
  /// Applies every fault edge scheduled at the current cycle.
  void process_fault_edges();
  /// Reroutes around the active fault set and swaps tables (immediately
  /// under kDropRetransmit; kDrainThenSwap defers via pending_routing_).
  void apply_fault_epoch();
  /// Swaps the live tables for `pending_routing_`, purging and
  /// retransmitting in-flight victims under kDropRetransmit.
  void perform_swap();
  /// True while some node holds a claimed NI VC (a packet mid-injection);
  /// drain-then-swap must wait for these even at zero in-network flits.
  [[nodiscard]] bool injection_in_progress() const;
  /// Removes every flit of `victims` (by packet id) from the source queues,
  /// NI pipelines, router buffers and channels, restoring credits.
  void purge_packets(const std::vector<char>& victims);
  /// VC index range [lo, hi) available to a packet with the given
  /// orientation: the full range under pure DOR, a half under O1TURN.
  [[nodiscard]] std::pair<int, int> vc_class(bool y_first) const;
  void inject(int node);
  void allocate(int router);
  void arbitrate(int router);
  void deliver_channel_arrivals();
  void deliver_credits();
  [[nodiscard]] bool in_measurement_window() const noexcept {
    return cycle_ >= config_.warmup_cycles &&
           cycle_ < config_.warmup_cycles + config_.measure_cycles;
  }
  [[nodiscard]] int pick_packet_bits();
  [[nodiscard]] SimStats finalize() const;
  /// Name of the run phase the given cycle falls into.
  [[nodiscard]] const char* phase_name(long cycle) const noexcept;
  /// Emits one `sim.progress` trace snapshot for the current cycle.
  void emit_progress();
  /// Appends one sample per telemetry series to config_.series for the
  /// window ending at the current cycle.
  void record_series();
  /// Emits the `sim.channel_utilization` heatmap for a finished run.
  void emit_channel_heatmap(const SimStats& stats) const;

  const Network& net_;
  SimConfig config_;
  Rng rng_;

  // Fault-injection state. With an empty schedule: faults_enabled_ is
  // false, routing_ stays &net_.routing() and none of the machinery below
  // runs, so behavior is identical to a fault-free simulator.
  bool faults_enabled_ = false;
  const route::MeshRouting* routing_;
  std::optional<route::MeshRouting> degraded_routing_;
  std::optional<route::MeshRouting> pending_routing_;  // drain-then-swap
  // (cycle, is_recovery, event index); recoveries sort before activations
  // at the same cycle so a replacement fault set takes over atomically.
  std::vector<std::tuple<long, int, std::size_t>> fault_edges_;
  std::size_t next_fault_edge_ = 0;
  std::vector<char> event_active_;
  fault::FaultSet active_faults_;
  std::vector<std::pair<int, int>> pending_unreachable_xy_;
  std::vector<std::pair<int, int>> pending_unreachable_yx_;
  std::vector<char> channel_dead_;   // [channel] under the live tables
  std::vector<int> extra_pipeline_;  // [router] port-degradation cycles
  bool draining_for_swap_ = false;
  long in_network_flits_ = 0;  // NI pipelines + router buffers + channels
  long last_ejection_cycle_ = -1;
  long reroutes_ = 0;
  long packets_dropped_ = 0;
  long packets_retransmitted_ = 0;
  long packets_lost_ = 0;
  long packets_unroutable_ = 0;

  long cycle_ = 0;
  std::vector<Packet> packets_;
  std::vector<RouterState> routers_;
  std::vector<NodeState> nodes_;
  std::vector<std::vector<int>> ni_credits_;  // [node][vc] for port-0 VCs

  // Per-channel in-flight flits (arrival cycle is monotone per channel).
  std::vector<std::deque<std::pair<long, Flit>>> channel_flits_;
  // Per-channel pending credit returns: (cycle, vc).
  std::vector<std::deque<std::pair<long, int>>> channel_credits_;
  // Pending NI credit returns: (cycle, node, vc).
  std::deque<std::tuple<long, int, int>> ni_credit_returns_;
  // Flits in flight from an NI into its router: (arrival cycle, node, flit).
  std::deque<std::tuple<long, int, Flit>> ni_arrivals_;
  // Measured packets created but not yet fully ejected.
  long outstanding_measured_ = 0;
  // Lifetime ejection counters, for the progress telemetry.
  long ejected_total_ = 0;
  long last_snapshot_ejected_ = 0;
  long last_progress_cycle_ = -1;
  long last_progress_in_flight_ = -1;

  // Lifetime flit counters for the series recorder. Maintained
  // unconditionally: an increment on an already-hot line is cheaper than a
  // branch, and it keeps the recording-disabled path down to the single
  // `if (recording)` in run().
  long injected_flits_total_ = 0;
  long ejected_flits_total_ = 0;
  long grants_total_ = 0;
  // Series-window baselines, reset by record_series().
  long window_injected_ = 0;
  long window_ejected_ = 0;
  long window_grants_ = 0;
  long window_flit_cycles_ = 0;  // sum of in-network flits per cycle
  // Trace-driven injections: (create cycle, src, dst, bits), kept sorted.
  std::vector<std::tuple<long, int, int, int>> scheduled_;
  std::size_t next_scheduled_ = 0;

  // Scratch: one grant per input port per cycle.
  std::vector<std::vector<char>> input_port_used_;

  // Measurement accumulators.
  long contention_cycles_ = 0;
  long grants_measured_ = 0;
  ActivityCounters activity_;
  std::vector<long> channel_flits_measured_;
  std::vector<double> mix_cdf_;
  std::vector<int> mix_bits_;
};

}  // namespace xlp::sim
