#pragma once

#include <vector>

#include "fault/model.hpp"
#include "latency/packet_mix.hpp"

namespace xlp::obs {
class SeriesRecorder;
class TraceSink;
}

namespace xlp::runctl {
class RunControl;
}

namespace xlp::sim {

/// What to do with packets already in flight when a fault severs their path.
///  * kDrainThenSwap: graceful reconfiguration — injection is gated, the
///    network drains on the old tables (the dead link keeps carrying the
///    flits already committed to it, a static-reconfiguration assumption),
///    then routing swaps atomically on an empty network;
///  * kDropRetransmit: the fault takes effect immediately — every in-flight
///    packet whose route crosses a dead channel is purged (a conservative
///    over-approximation: a worm that already cleared the channel is dropped
///    too) and its source retransmits it on the rerouted tables, up to
///    `FaultSchedule::max_retries` attempts, keeping the original creation
///    timestamp so measured latency includes the fault penalty.
enum class FaultPolicy { kDrainThenSwap, kDropRetransmit };

/// One timed fault-set activation: `faults` becomes active at `cycle` and,
/// when `recover_cycle >= 0`, retires again at that cycle (transient fault);
/// -1 means permanent.
struct FaultEvent {
  long cycle = 0;
  fault::FaultSet faults;
  long recover_cycle = -1;
};

/// Mid-run fault injection plan. Each activation/retirement triggers a
/// reroute on the surviving subgraph plus a table swap under `policy`.
struct FaultSchedule {
  std::vector<FaultEvent> events;
  FaultPolicy policy = FaultPolicy::kDropRetransmit;
  /// Retransmission attempts per packet under kDropRetransmit; a packet
  /// dropped more than this many times is lost (and reported).
  int max_retries = 3;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
};

/// How packets are routed through the two dimensions.
///  * kXY / kYX: pure dimension-order routing (the paper's default is XY);
///  * kO1Turn: each packet picks XY or YX uniformly at random and the two
///    orientations travel on disjoint VC classes [Seo et al., ISCA'05] —
///    the non-DOR comparison point Section 4.2 argues is unnecessary at
///    realistic loads. Requires at least two VCs per port.
enum class RoutingMode { kXY, kYX, kO1Turn };

/// Switch-allocation policy.
///  * kRoundRobin: classic rotating priority per output port (default);
///  * kOldestFirst: age-based arbitration — the eligible flit whose packet
///    was created earliest wins. Trades a little arbiter complexity for a
///    tighter latency tail (compare p99 in bench/arbiter_ablation).
enum class Arbiter { kRoundRobin, kOldestFirst };

/// Simulator configuration. Defaults model the paper's platform: canonical
/// 3-stage credit-based wormhole routers (Section 5.1) with a handful of
/// virtual channels per port to reduce head-of-line blocking (Section 2.2).
struct SimConfig {
  int vcs_per_port = 4;

  RoutingMode routing = RoutingMode::kXY;

  Arbiter arbiter = Arbiter::kRoundRobin;

  /// Virtual-express-channel mode [Kumar et al., ISCA'07], the *virtual*
  /// alternative the paper contrasts with physical express links (Section
  /// 2.1): a packet continuing straight through an intermediate router (same
  /// dimension, same direction) bypasses the route-compute/VC-allocation
  /// stages and competes for the switch immediately — but it still pays
  /// switch traversal, link traversal and the full wire delay, which is
  /// exactly why its latency reduction is limited compared to physical
  /// express links.
  bool virtual_express_bypass = false;

  /// Total input-buffer budget per router in bits. Section 4.6: "we
  /// configure the buffer size of each router to be the same for all
  /// schemes" so no topology gets an unfair buffering advantage. The per-VC
  /// depth in flits is derived per router from its port count and the flit
  /// width (minimum 2 flits so credit round-trips don't strangle a VC).
  /// Default: what a 5-port, 4-VC, 8-deep, 256-bit mesh router holds.
  long buffer_bits_per_router = 5L * 4 * 8 * 256;

  /// Router pipeline depth in cycles from buffer write to switch
  /// traversal; 3 matches Tr in the analytic model.
  int pipeline_stages = 3;

  long warmup_cycles = 1000;
  long measure_cycles = 10000;
  /// After measurement, run up to this many extra cycles so measured
  /// packets can drain; statistics only count packets created inside the
  /// measurement window.
  long drain_cycles = 20000;

  std::uint64_t seed = 1;

  latency::PacketMix mix = latency::PacketMix::paper_default();

  /// Optional structured trace sink (not owned; must outlive the run).
  /// When set and enabled, the simulator emits periodic `sim.progress`
  /// snapshots every trace_interval_cycles plus a final
  /// `sim.channel_utilization` heatmap derived from the per-channel flit
  /// counts. Null by default so instrumentation costs nothing.
  obs::TraceSink* trace = nullptr;
  long trace_interval_cycles = 1000;

  /// Optional bounded-memory time-series recorder (not owned; must outlive
  /// the run). When set, the simulator appends one sample per series every
  /// series_interval_cycles: injected/ejected flits in the window, flits in
  /// the network, active routers, mean per-VC buffer occupancy and the
  /// stalled-cycle fraction. Null by default; the disabled path costs a
  /// single branch per cycle (verified by bench/micro_core sim_run_8x8).
  obs::SeriesRecorder* series = nullptr;
  long series_interval_cycles = 256;

  /// Cooperative stop polled once per simulated cycle. When a deadline or
  /// interrupt fires, the run ends at that cycle boundary, statistics are
  /// finalized over the cycles actually simulated, and SimStats::status
  /// records why. Not owned; null (the default) costs nothing.
  runctl::RunControl* control = nullptr;

  /// Mid-run fault injection (empty by default). An empty schedule leaves
  /// the simulator bit-for-bit identical to a fault-free build: no extra
  /// rng draws, no routing indirection cost, no gating.
  FaultSchedule faults;

  /// Derived per-VC depth for a router with `ports` ports at `flit_bits`.
  [[nodiscard]] int vc_depth_flits(int ports, int flit_bits) const {
    const long per_vc =
        buffer_bits_per_router /
        (static_cast<long>(ports) * vcs_per_port * flit_bits);
    return per_vc < 2 ? 2 : static_cast<int>(per_vc);
  }
};

}  // namespace xlp::sim
