#include "sim/network.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace xlp::sim {

Network::Network(const topo::ExpressMesh& mesh, route::HopWeights weights)
    : width_(mesh.width()),
      height_(mesh.height()),
      flit_bits_(mesh.flit_bits()),
      mesh_(mesh),
      weights_(weights),
      routing_(mesh, weights) {
  const int nodes = node_count();
  ports_.resize(static_cast<std::size_t>(nodes));
  port_of_peer_.assign(static_cast<std::size_t>(nodes),
                       std::vector<int>(static_cast<std::size_t>(nodes), -1));

  // Port 0 everywhere: the network interface.
  for (int r = 0; r < nodes; ++r) ports_[r].push_back(Port{});

  // Neighbor ports: row neighbors first (ascending position), then column
  // neighbors — Fig. 3(b)'s outport numbering convention. Parallel
  // duplicate links collapse because add_neighbor is idempotent per peer.
  for (int r = 0; r < nodes; ++r) {
    const int x = r % width_;
    const int y = r / width_;
    auto add_neighbor = [&](int peer) {
      auto& slot = port_of_peer_[static_cast<std::size_t>(r)]
                                [static_cast<std::size_t>(peer)];
      if (slot >= 0) return;
      Port p;
      p.peer_router = peer;
      p.length =
          std::abs(peer % width_ - x) + std::abs(peer / width_ - y);
      p.dx = (peer % width_ > x) - (peer % width_ < x);
      p.dy = (peer / width_ > y) - (peer / width_ < y);
      slot = static_cast<int>(ports_[static_cast<std::size_t>(r)].size());
      ports_[static_cast<std::size_t>(r)].push_back(p);
    };
    for (int nx : mesh.row(y).neighbors_left(x))
      add_neighbor(y * width_ + nx);
    for (int nx : mesh.row(y).neighbors_right(x))
      add_neighbor(y * width_ + nx);
    for (int ny : mesh.col(x).neighbors_left(y))
      add_neighbor(ny * width_ + x);
    for (int ny : mesh.col(x).neighbors_right(y))
      add_neighbor(ny * width_ + x);
  }

  // Directed channels; both endpoints now have their port tables, so wire
  // up peer_port / in_channel / out_channel.
  for (int r = 0; r < nodes; ++r) {
    for (int p = 1; p < port_count(r); ++p) {
      Port& out = ports_[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(p)];
      const int peer = out.peer_router;
      const int peer_port =
          port_of_peer_[static_cast<std::size_t>(peer)]
                       [static_cast<std::size_t>(r)];
      XLP_CHECK(peer_port >= 1, "links must be bidirectional");
      out.peer_port = peer_port;

      const int id = static_cast<int>(channels_.size());
      channels_.push_back({r, p, peer, peer_port, out.length});
      out.out_channel = id;
      ports_[static_cast<std::size_t>(peer)]
            [static_cast<std::size_t>(peer_port)].in_channel = id;
    }
  }
}

int Network::side() const {
  XLP_REQUIRE(width_ == height_, "side() called on a rectangular network");
  return width_;
}

int Network::port_count(int router) const {
  XLP_REQUIRE(router >= 0 && router < node_count(), "router out of range");
  return static_cast<int>(ports_[static_cast<std::size_t>(router)].size());
}

const Network::Port& Network::port(int router, int p) const {
  XLP_REQUIRE(p >= 0 && p < port_count(router), "port out of range");
  return ports_[static_cast<std::size_t>(router)][static_cast<std::size_t>(p)];
}

int Network::port_to(int router, int peer) const {
  XLP_REQUIRE(router >= 0 && router < node_count() && peer >= 0 &&
                  peer < node_count(),
              "node out of range");
  return port_of_peer_[static_cast<std::size_t>(router)]
                      [static_cast<std::size_t>(peer)];
}

int Network::next_output_port(int router, int dst,
                              route::Orientation orientation) const {
  XLP_REQUIRE(router >= 0 && router < node_count() && dst >= 0 &&
                  dst < node_count(),
              "node out of range");
  if (router == dst) return 0;
  const int next = routing_.next_hop(router, dst, orientation);
  const int p = port_of_peer_[static_cast<std::size_t>(router)]
                             [static_cast<std::size_t>(next)];
  XLP_CHECK(p >= 1, "routing selected a node that is not a neighbor");
  return p;
}

}  // namespace xlp::sim
