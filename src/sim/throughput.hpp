#pragma once

#include <vector>

#include "sim/config.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"
#include "traffic/matrix.hpp"

namespace xlp::sim {

/// One sample of the load/latency curve.
struct LoadPoint {
  double offered = 0.0;   // packets/node/cycle
  double accepted = 0.0;  // packets/node/cycle actually delivered
  double avg_latency = 0.0;
  bool saturated = false;  // latency blow-up or undelivered measured packets
};

struct SaturationResult {
  std::vector<LoadPoint> curve;
  /// Saturation throughput: the largest accepted rate observed before (or
  /// at) saturation — Fig. 8(b)'s metric.
  double saturation_throughput = 0.0;
};

/// Runs one simulation with the traffic `shape` rescaled so that the mean
/// per-node injection rate is `per_node_rate`.
[[nodiscard]] SimStats simulate_at_load(const Network& network,
                                        const traffic::TrafficMatrix& shape,
                                        double per_node_rate,
                                        const SimConfig& config);

/// Sweeps offered load from `step` upward in increments of `step` (up to
/// `max_rate`), stopping two points after saturation is detected. A point
/// counts as saturated when measured packets fail to drain or the average
/// latency exceeds `latency_blowup` times the first point's latency.
[[nodiscard]] SaturationResult find_saturation(
    const Network& network, const traffic::TrafficMatrix& shape,
    const SimConfig& config, double step = 0.02, double max_rate = 0.6,
    double latency_blowup = 6.0);

}  // namespace xlp::sim
