#include "sim/throughput.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace xlp::sim {

SimStats simulate_at_load(const Network& network,
                          const traffic::TrafficMatrix& shape,
                          double per_node_rate, const SimConfig& config) {
  XLP_REQUIRE(per_node_rate > 0.0, "offered load must be positive");
  traffic::TrafficMatrix demand = shape;
  demand.scale_total(per_node_rate * network.node_count());
  Simulator sim(network, demand, config);
  return sim.run();
}

SaturationResult find_saturation(const Network& network,
                                 const traffic::TrafficMatrix& shape,
                                 const SimConfig& config, double step,
                                 double max_rate, double latency_blowup) {
  XLP_REQUIRE(step > 0.0 && max_rate >= step, "bad sweep range");

  SaturationResult result;
  double base_latency = 0.0;
  int points_past_saturation = 0;
  for (double rate = step; rate <= max_rate + 1e-12; rate += step) {
    const SimStats stats = simulate_at_load(network, shape, rate, config);

    LoadPoint point;
    point.offered = stats.offered_packets_per_node_cycle;
    point.accepted = stats.throughput_packets_per_node_cycle;
    point.avg_latency = stats.avg_latency;
    if (result.curve.empty()) base_latency = stats.avg_latency;
    point.saturated =
        !stats.drained ||
        (base_latency > 0.0 && stats.avg_latency > latency_blowup * base_latency);
    result.curve.push_back(point);
    result.saturation_throughput =
        std::max(result.saturation_throughput, point.accepted);

    if (point.saturated && ++points_past_saturation >= 2) break;
  }
  return result;
}

}  // namespace xlp::sim
