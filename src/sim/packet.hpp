#pragma once

#include <cstdint>
#include <vector>

namespace xlp::sim {

/// One network packet and its lifetime timestamps (-1 = not yet reached).
struct Packet {
  long id = -1;
  int src = 0;
  int dst = 0;
  int bits = 0;
  int flits = 0;
  long created = -1;   // cycle the source core produced it
  long injected = -1;  // cycle its head flit entered the source router
  long head_ejected = -1;  // cycle its head flit reached the destination NI
  long ejected = -1;   // cycle its tail flit reached the destination NI
  int hops = 0;        // links traversed by the head flit
  bool measured = false;  // created inside the measurement window
  bool y_first = false;   // routing orientation chosen at creation
  int retries = 0;        // retransmission attempts that produced this copy
  bool dropped = false;   // purged by a fault (a retransmitted copy, if any,
                          // is a separate packet preserving `created`)
  bool superseded = false;  // a retransmitted copy exists; statistics count
                            // the copy, not this entry
};

/// One flow-control unit. Flits travel by value; the owning packet is
/// looked up through `packet` (an index into the simulator's packet table).
struct Flit {
  long packet = -1;  // index into the packet table
  int seq = 0;       // 0-based position within the packet
  bool is_head = false;
  bool is_tail = false;
  int dst = 0;       // destination node (copied for cheap route computation)
  bool y_first = false;  // routing orientation (YX when true)

  // Per-hop bookkeeping, rewritten at each router.
  int vc = 0;            // virtual channel this flit occupies downstream
  long ready_cycle = 0;  // earliest cycle this flit may compete for the switch
};

}  // namespace xlp::sim
