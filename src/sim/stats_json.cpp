#include "sim/stats_json.hpp"

#include "util/fsio.hpp"

namespace xlp::sim {

obs::Json stats_to_json(const SimStats& stats) {
  obs::Json latency = obs::Json::object()
                          .set("avg", stats.avg_latency)
                          .set("avg_head", stats.avg_head_latency)
                          .set("max", stats.max_latency)
                          .set("stddev", stats.stddev_latency)
                          .set("p50", stats.p50_latency)
                          .set("p95", stats.p95_latency)
                          .set("p99", stats.p99_latency)
                          .set("ci95", stats.ci95_latency);

  obs::Json activity =
      obs::Json::object()
          .set("buffer_writes", stats.activity.buffer_writes)
          .set("buffer_reads", stats.activity.buffer_reads)
          .set("crossbar_traversals", stats.activity.crossbar_traversals)
          .set("link_flit_units", stats.activity.link_flit_units)
          .set("measured_cycles", stats.activity.measured_cycles)
          .set("flit_bits", stats.activity.flit_bits);

  obs::Json channel_flits = obs::Json::array();
  for (const long flits : stats.channel_flits) channel_flits.push(flits);

  return obs::Json::object()
      .set("packets_offered", stats.packets_offered)
      .set("packets_finished", stats.packets_finished)
      .set("packets_ejected_in_window", stats.packets_ejected_in_window)
      .set("latency", std::move(latency))
      .set("throughput_packets_per_node_cycle",
           stats.throughput_packets_per_node_cycle)
      .set("offered_packets_per_node_cycle",
           stats.offered_packets_per_node_cycle)
      .set("avg_hops", stats.avg_hops)
      .set("avg_contention_per_hop", stats.avg_contention_per_hop)
      .set("activity", std::move(activity))
      .set("channel_flits", std::move(channel_flits))
      .set("drained", stats.drained)
      .set("status", runctl::to_string(stats.status))
      .set("last_ejection_cycle", stats.last_ejection_cycle)
      .set("faults",
           obs::Json::object()
               .set("reroutes", stats.reroutes)
               .set("packets_dropped", stats.packets_dropped)
               .set("packets_retransmitted", stats.packets_retransmitted)
               .set("packets_lost", stats.packets_lost)
               .set("packets_unroutable", stats.packets_unroutable));
}

bool write_stats_json(const SimStats& stats, const std::string& path) {
  // Atomic temp-file + rename: a crash mid-write can never leave a
  // truncated stats document behind for downstream tooling to choke on.
  return util::atomic_write_file(path, stats_to_json(stats).dump() + "\n");
}

}  // namespace xlp::sim
