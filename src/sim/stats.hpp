#pragma once

#include <cstdint>
#include <vector>

#include "runctl/control.hpp"

namespace xlp::sim {

/// Flit-event counters accumulated over the measurement window; the power
/// model converts these into dynamic energy (activity x width).
struct ActivityCounters {
  long buffer_writes = 0;     // flits written into router input buffers
  long buffer_reads = 0;      // flits read out on a switch grant
  long crossbar_traversals = 0;  // flits through a crossbar (== grants)
  long link_flit_units = 0;   // sum over link traversals of flit * length
  long measured_cycles = 0;
  int flit_bits = 0;
};

/// End-of-run summary. Latencies are in cycles, measured from packet
/// creation to tail ejection (so they include source queuing and
/// serialization), which is what the paper's "average packet latency"
/// reports.
struct SimStats {
  long packets_offered = 0;    // created in the measurement window
  long packets_finished = 0;   // of those, ejected before the run ended
  long packets_ejected_in_window = 0;  // ejections inside the window

  double avg_latency = 0.0;        // creation -> tail ejection
  double avg_head_latency = 0.0;   // creation -> head ejection
  double max_latency = 0.0;
  double stddev_latency = 0.0;
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  /// Half-width of the 95% confidence interval on avg_latency from the
  /// method of batch means (10 batches over the measurement window); 0 when
  /// fewer than two batches carried packets.
  double ci95_latency = 0.0;

  /// Accepted throughput: packets ejected inside the measurement window
  /// per cycle per node.
  double throughput_packets_per_node_cycle = 0.0;
  /// Offered load for reference, same unit.
  double offered_packets_per_node_cycle = 0.0;

  double avg_hops = 0.0;  // links traversed per finished packet

  /// Average switch-allocation wait per flit grant beyond the pipeline
  /// minimum: the measured counterpart of the paper's per-hop contention
  /// delay Tc.
  double avg_contention_per_hop = 0.0;

  ActivityCounters activity;

  /// Flits that traversed each router-to-router channel during the
  /// measurement window, indexed like Network::channels(). Utilization of
  /// channel c is channel_flits[c] / measured_cycles (a channel carries at
  /// most one flit per cycle). Section 5.4's bandwidth-utilization
  /// discussion is reproduced from exactly this.
  std::vector<long> channel_flits;

  /// True when every measured packet drained before the run ended; if
  /// false the network was past saturation for this configuration.
  bool drained = true;

  /// kCompleted for a full warmup+measure+drain run; kDeadline /
  /// kInterrupted when SimConfig::control ended the run early. On an early
  /// stop the rate statistics are normalized over the cycles actually
  /// measured, and `drained == false` means "stopped before draining", not
  /// necessarily saturation.
  runctl::RunStatus status = runctl::RunStatus::kCompleted;

  /// Cycle of the last tail ejection (-1 when nothing ejected). Together
  /// with the in-flight count this distinguishes saturation (ejections
  /// continue to the end) from a fault-severed route (ejections stop).
  long last_ejection_cycle = -1;

  /// Last `sim.progress` trace snapshot, kept so undrained-run diagnostics
  /// (exp::warn_if_undrained) can say where the run stood without re-parsing
  /// the trace. Both -1 when tracing was off or no snapshot fired.
  long last_progress_cycle = -1;
  long last_progress_in_flight = -1;

  // Fault-injection outcome counters (lifetime, all zero without faults).
  long reroutes = 0;               // routing-table swaps performed
  long packets_dropped = 0;        // purged mid-flight by a fault
  long packets_retransmitted = 0;  // dropped packets re-sent by their source
  long packets_lost = 0;           // dropped with retries exhausted or no route
  long packets_unroutable = 0;     // refused at creation: no surviving route
};

}  // namespace xlp::sim
