// Design-space explorer: sweep the cross-section link limit C for a given
// network size, print the full latency-vs-C curve (the paper's Fig. 5 view)
// with head/serialization decomposition, and describe the winning design in
// detail: placement, ports, worst-case latency, deadlock check, and
// hardware overhead.
//
//   $ ./design_space_explorer [side=8] [sa_moves=10000] [seed=1]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/c_sweep.hpp"
#include "latency/model.hpp"
#include "power/area.hpp"
#include "route/deadlock.hpp"
#include "sim/config.hpp"
#include "topo/builders.hpp"
#include "topo/render.hpp"
#include "util/table.hpp"

using namespace xlp;

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 8;
  const long moves = argc > 2 ? std::atol(argv[2]) : 10000;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                      : 1;
  if (side < 2) {
    std::fprintf(stderr, "usage: %s [side>=2] [sa_moves] [seed]\n", argv[0]);
    return 1;
  }

  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(moves);
  options.latency = latency::LatencyParams::zero_load();
  Rng rng(seed);
  const auto points = core::sweep_link_limits(side, options, rng);

  std::printf("design space of the %dx%d network (%zu feasible link "
              "limits)\n\n",
              side, side, points.size());
  Table table({"C", "flit bits", "avg latency", "head", "serialization",
               "evals", "seconds"});
  for (const auto& p : points)
    table.add_row({std::to_string(p.link_limit),
                   std::to_string(p.design.flit_bits()),
                   Table::fmt(p.breakdown.total()),
                   Table::fmt(p.breakdown.head),
                   Table::fmt(p.breakdown.serialization),
                   std::to_string(p.placement.evaluations),
                   Table::fmt(p.placement.seconds, 3)});
  table.print(std::cout);

  const auto& best = points[core::best_point(points)];
  const latency::MeshLatencyModel model(best.design, options.latency);
  const latency::MeshLatencyModel mesh_model(topo::make_mesh(side),
                                             options.latency);

  std::printf("\nwinning design: C=%d\n", best.link_limit);
  std::printf("  row placement:   %s\n",
              best.placement.placement.to_string().c_str());
  std::printf("%s",
              topo::render_row(best.placement.placement).c_str());
  std::printf("  avg latency:     %.2f cycles (mesh: %.2f, -%.1f%%)\n",
              best.breakdown.total(), mesh_model.average().total(),
              100.0 * (1.0 - best.breakdown.total() /
                                 mesh_model.average().total()));
  std::printf("  worst-case:      %.1f cycles (mesh: %.1f)\n",
              model.worst_case(), mesh_model.worst_case());
  std::printf("  avg hops:        %.2f (mesh: %.2f)\n", model.average_hops(),
              mesh_model.average_hops());
  std::printf("  avg router ports %.2f\n",
              best.design.average_router_ports());

  const route::ChannelDependencyGraph cdg(best.design, model.routing());
  std::printf("  deadlock check:  %s (%zu channels, %zu dependencies)\n",
              cdg.has_cycle() ? "CYCLE FOUND (bug!)" : "acyclic",
              cdg.channel_count(), cdg.dependency_count());

  const auto area = power::evaluate_area(
      best.design, sim::SimConfig{}.buffer_bits_per_router);
  std::printf("  table overhead:  %.2f%% of router area\n",
              100.0 * area.table_overhead_fraction());
  return cdg.has_cycle() ? 2 : 0;
}
