// The full Section 5.6.4 methodology, end to end:
//
//   1. run the workload once on the baseline mesh and *measure* its traffic
//      (the profiling pass — here a sampled trace replayed on the mesh,
//      with the observed gamma_ij reconstructed from the packets);
//   2. feed the measured matrix to the application-specific optimizer
//      (per-row / per-column weighted D&C_SA);
//   3. replay the *same trace* on the general-purpose design and on the
//      specialized design and compare measured latencies.
//
//   $ ./profile_and_specialize [workload=transpose] [cycles=20000]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/app_specific.hpp"
#include "core/c_sweep.hpp"
#include "exp/scenarios.hpp"
#include "traffic/patterns.hpp"

using namespace xlp;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "transpose";
  const long cycles = argc > 2 ? std::atol(argv[2]) : 20000;
  constexpr int kSide = 8;

  // Resolve the workload into an offered-demand description.
  traffic::TrafficMatrix demand(kSide);
  if (const auto pattern = traffic::pattern_from_string(workload)) {
    demand = traffic::TrafficMatrix::from_pattern(*pattern, kSide, 0.02);
  } else {
    demand = traffic::parsec_model(workload).traffic_matrix(kSide);
  }

  // 1. Profile on the mesh.
  std::printf("profiling '%s' on the baseline mesh for %ld cycles...\n",
              workload.c_str(), cycles);
  const exp::ProfileResult profile = exp::profile_on_mesh(demand, cycles, 5);
  std::printf("  observed %.0f packets, mesh latency %.2f cycles\n",
              profile.observed.total_rate() * cycles,
              profile.stats.avg_latency);

  // 2. Optimize: general-purpose (uniform objective) and specialized (the
  //    *measured* matrix as the objective weights).
  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(2000);
  options.latency = latency::LatencyParams::zero_load();
  options.report_traffic = profile.observed;

  Rng gp_rng(1);
  const auto gp = core::sweep_link_limits(kSide, options, gp_rng);
  const auto& gp_best = gp[core::best_point(gp)];

  Rng app_rng(2);
  const auto app = core::solve_app_specific(profile.observed, options,
                                            app_rng);

  // 3. Replay the same offered workload on both designs.
  Rng trace_rng(5);
  const auto trace = traffic::Trace::sample(
      demand, latency::PacketMix::paper_default(), cycles, trace_rng);
  const auto gp_stats = exp::replay_trace(gp_best.design, trace,
                                          sim::SimConfig{});
  const auto app_stats = exp::replay_trace(app.design, trace,
                                           sim::SimConfig{});

  std::printf("\nmeasured average packet latency (same %zu-packet trace):\n",
              trace.packets().size());
  std::printf("  baseline mesh:        %.2f cycles\n",
              profile.stats.avg_latency);
  std::printf("  general-purpose (C=%d): %.2f cycles\n", gp_best.link_limit,
              gp_stats.avg_latency);
  std::printf("  app-specific   (C=%d): %.2f cycles (%.1f%% below "
              "general-purpose)\n",
              app.link_limit, app_stats.avg_latency,
              100.0 * (1.0 - app_stats.avg_latency / gp_stats.avg_latency));
  return 0;
}
