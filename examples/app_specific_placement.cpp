// Application-specific placement (Section 5.6.4): given a known workload —
// a PARSEC model name or a synthetic pattern — optimize each row and column
// with its own demand-weighted objective and compare against the
// general-purpose design.
//
//   $ ./app_specific_placement canneal
//   $ ./app_specific_placement transpose
//   $ ./app_specific_placement hotspot 16

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/app_specific.hpp"
#include "core/c_sweep.hpp"
#include "traffic/app_models.hpp"
#include "traffic/patterns.hpp"

using namespace xlp;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "canneal";
  const int side = argc > 2 ? std::atoi(argv[2]) : 8;

  // Resolve the workload: PARSEC model name first, synthetic pattern next.
  traffic::TrafficMatrix demand(side);
  bool resolved = false;
  for (const auto& model : traffic::parsec_models()) {
    if (model.name == workload) {
      demand = model.traffic_matrix(side);
      resolved = true;
      break;
    }
  }
  if (!resolved) {
    const auto pattern = traffic::pattern_from_string(workload);
    if (!pattern) {
      std::fprintf(stderr,
                   "unknown workload '%s' (PARSEC name or pattern)\n",
                   workload.c_str());
      return 1;
    }
    demand = traffic::TrafficMatrix::from_pattern(*pattern, side, 0.02);
    resolved = true;
  }

  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(2000);
  options.latency = latency::LatencyParams::zero_load();
  options.report_traffic = demand;

  // General-purpose design evaluated on this demand.
  Rng gp_rng(9);
  const auto gp = core::sweep_link_limits(side, options, gp_rng);
  const auto& gp_best = gp[core::best_point(gp)];

  // Application-specific design.
  Rng app_rng(10);
  const auto app = core::solve_app_specific(demand, options, app_rng);

  std::printf("workload %s on %dx%d (offered %.3f packets/cycle total)\n\n",
              workload.c_str(), side, side, demand.total_rate());
  std::printf("general-purpose: C=%d  avg latency %.2f cycles  row %s\n",
              gp_best.link_limit, gp_best.breakdown.total(),
              gp_best.placement.placement.to_string().c_str());
  std::printf("app-specific:    C=%d  avg latency %.2f cycles "
              "(%.1f%% further reduction)\n\n",
              app.link_limit, app.breakdown.total(),
              100.0 * (1.0 - app.breakdown.total() /
                                 gp_best.breakdown.total()));

  std::printf("per-row / per-column placements of the app-specific "
              "design:\n");
  for (int y = 0; y < side; ++y)
    std::printf("  row %2d: %s\n", y, app.design.row(y).to_string().c_str());
  for (int x = 0; x < side; ++x)
    std::printf("  col %2d: %s\n", x, app.design.col(x).to_string().c_str());
  return 0;
}
