// Rectangular networks: many CMPs are wider than they are tall (e.g. 8x4
// tiles beside a memory controller column). The 2D->1D reduction still
// holds — rows and columns are just different 1D problems — so the toolkit
// optimizes P̄(width, C) and P̄(height, C) separately and replicates.
//
//   $ ./rectangular_design [width=8] [height=4] [moves=5000]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/c_sweep.hpp"
#include "latency/model.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

using namespace xlp;

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 8;
  const int height = argc > 2 ? std::atoi(argv[2]) : 4;
  const long moves = argc > 3 ? std::atol(argv[3]) : 5000;

  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(moves);
  options.latency = latency::LatencyParams::zero_load();
  Rng rng(1);
  const auto points = core::sweep_link_limits_rect(width, height, options,
                                                   rng);

  std::printf("%dx%d design space\n\n", width, height);
  Table table({"C", "flit", "avg latency", "row placement", "col placement"});
  for (const auto& p : points)
    table.add_row({std::to_string(p.link_limit),
                   std::to_string(p.design.flit_bits()),
                   Table::fmt(p.breakdown.total()),
                   p.design.row(0).to_string(),
                   p.design.col(0).to_string()});
  table.print(std::cout);

  const auto& best = points[core::best_point(points)];
  const double mesh_total =
      core::evaluate_design(topo::make_rect_mesh(width, height),
                            options.latency, {})
          .total();
  std::printf("\nbest: C=%d at %.2f cycles (plain %dx%d mesh: %.2f, "
              "-%.1f%%)\n",
              best.link_limit, best.breakdown.total(), width, height,
              mesh_total,
              100.0 * (1.0 - best.breakdown.total() / mesh_total));
  return 0;
}
