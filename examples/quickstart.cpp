// Quickstart: optimize express-link placement for an 8x8 mesh under a
// bisection-bandwidth budget and compare the result against the baseline.
//
//   $ ./quickstart
//
// Walks the library's main flow in ~40 lines: objective -> D&C_SA solve ->
// design point -> analytic latency -> flit-level simulation.

#include <cstdio>

#include "core/c_sweep.hpp"
#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"
#include "traffic/app_models.hpp"

using namespace xlp;

int main() {
  constexpr int kSide = 8;

  // 1. Sweep every feasible cross-section limit C, solving the 1D placement
  //    problem P̄(n, C) with D&C_SA for each (Section 4 of the paper).
  core::SweepOptions options;
  options.sa = core::SaParams{};  // Table 1 schedule
  Rng rng(1);
  const auto points = core::sweep_link_limits(kSide, options, rng);
  const auto& best = points[core::best_point(points)];

  std::printf("best design: C=%d, flit %d bits, row placement %s\n",
              best.link_limit, best.design.flit_bits(),
              best.placement.placement.to_string().c_str());

  // 2. Analytic comparison against the plain mesh.
  const auto params = latency::LatencyParams::zero_load();
  const latency::MeshLatencyModel mesh_model(topo::make_mesh(kSide), params);
  std::printf("analytic avg latency: mesh %.2f -> optimized %.2f cycles\n",
              mesh_model.average().total(), best.breakdown.total());

  // 3. Confirm in the flit-level simulator under a PARSEC-like workload.
  const auto demand = traffic::parsec_model("canneal").traffic_matrix(kSide);
  sim::SimConfig config;
  const auto mesh_stats =
      exp::simulate_design(topo::make_mesh(kSide), demand, config);
  const auto best_stats = exp::simulate_design(best.design, demand, config);
  std::printf("simulated avg latency (canneal): mesh %.2f -> optimized "
              "%.2f cycles (%ld packets)\n",
              mesh_stats.avg_latency, best_stats.avg_latency,
              best_stats.packets_finished);
  return 0;
}
