// Simulate a custom express topology: describe the 1D placement on the
// command line (express links as lo-hi pairs), pick a traffic pattern and a
// load, and get flit-level latency/throughput/power for the resulting
// design.
//
//   $ ./simulate_topology "1-3,3-7" 4 uniform_random 0.02
//     placement      C  pattern        packets/node/cycle
//
// The placement is replicated across all rows and columns (the paper's
// general-purpose construction); C must be a feasible limit for it.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "power/model.hpp"
#include "sim/throughput.hpp"
#include "topo/builders.hpp"
#include "traffic/patterns.hpp"

using namespace xlp;

namespace {

std::vector<topo::RowLink> parse_links(const std::string& spec) {
  std::vector<topo::RowLink> links;
  if (spec.empty() || spec == "none") return links;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto dash = item.find('-');
    if (dash == std::string::npos)
      throw std::invalid_argument("link must look like lo-hi: " + item);
    links.push_back({std::stoi(item.substr(0, dash)),
                     std::stoi(item.substr(dash + 1))});
  }
  return links;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec = argc > 1 ? argv[1] : "1-3,3-7";
  const int limit = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string pattern_name =
      argc > 3 ? argv[3] : "uniform_random";
  const double load = argc > 4 ? std::atof(argv[4]) : 0.02;
  const int side = argc > 5 ? std::atoi(argv[5]) : 8;

  const auto pattern = traffic::pattern_from_string(pattern_name);
  if (!pattern) {
    std::fprintf(stderr, "unknown pattern '%s'\n", pattern_name.c_str());
    return 1;
  }

  try {
    const topo::RowTopology row(side, parse_links(spec));
    const topo::ExpressMesh design = topo::make_design(row, limit);
    std::printf("design: %dx%d, C=%d, flit %d bits, row %s\n", side, side,
                limit, design.flit_bits(), row.to_string().c_str());

    const latency::MeshLatencyModel model(
        design, latency::LatencyParams::zero_load());
    std::printf("analytic: avg %.2f cycles (head %.2f + serialization "
                "%.2f), worst %.1f, avg hops %.2f\n",
                model.average().total(), model.average().head,
                model.average().serialization, model.worst_case(),
                model.average_hops());

    const auto demand =
        traffic::TrafficMatrix::from_pattern(*pattern, side, load);
    sim::SimConfig config;
    const auto stats = exp::simulate_design(design, demand, config);
    std::printf("simulated @ %.3f packets/node/cycle (%s):\n", load,
                pattern_name.c_str());
    std::printf("  avg latency %.2f cycles, head %.2f, max %.0f\n",
                stats.avg_latency, stats.avg_head_latency, stats.max_latency);
    std::printf("  accepted %.4f packets/node/cycle, contention %.2f "
                "cycles/hop, drained: %s\n",
                stats.throughput_packets_per_node_cycle,
                stats.avg_contention_per_hop, stats.drained ? "yes" : "NO");

    const auto power = power::evaluate_power(design, stats.activity,
                                             config.buffer_bits_per_router);
    std::printf("  router power: %.3f W total (%.3f dynamic + %.3f "
                "static)\n",
                power.total(), power.dynamic_total(), power.static_total());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
